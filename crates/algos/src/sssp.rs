//! Single-instance, subgraph-centric SSSP — the paper's §IV.C baseline.
//!
//! Runs on one graph instance (pattern: independent, one timestep): each
//! subgraph runs an internal Dijkstra from its current root set and sends
//! relaxations over remote edges; the BSP converges when no relaxation
//! improves any label — the classic subgraph-centric SSSP of GoFFish [11].
//!
//! With `latency_col = None` all edges weigh 1, degenerating to BFS — the
//! exact configuration the paper uses for its Giraph comparison ("running
//! SSSP on an unweighted graph degenerates to a BFS traversal").

use crate::tdsp::ordered_f64::F64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tempograph_core::VertexIdx;
use tempograph_engine::{Combiner, Context, Envelope, SubgraphProgram};
use tempograph_partition::Subgraph;

/// Sender-side min-combiner for SSSP relaxations: several distances bound
/// for the same vertex collapse to the smallest. The receiver takes the
/// minimum anyway, so results are identical with or without it.
pub struct SsspCombiner;

impl Combiner<(VertexIdx, f64)> for SsspCombiner {
    fn key(&self, msg: &(VertexIdx, f64)) -> Option<u64> {
        Some(msg.0 .0 as u64)
    }

    fn combine(&self, acc: &mut (VertexIdx, f64), incoming: (VertexIdx, f64)) {
        if incoming.1 < acc.1 {
            acc.1 = incoming.1;
        }
    }
}

/// The SSSP/BFS program; instantiate via [`Sssp::factory`].
pub struct Sssp {
    source: VertexIdx,
    /// Edge-latency column; `None` ⇒ unit weights (BFS).
    latency_col: Option<usize>,
    /// Tentative distances by local position.
    label: Vec<f64>,
    /// Local positions to start the next Dijkstra sweep from.
    roots: Vec<u32>,
}

impl Sssp {
    /// Build a per-subgraph factory for an SSSP from `source`. Pass
    /// `Some(col)` to weight edges by a `Double` edge attribute, `None`
    /// for unit weights.
    pub fn factory(
        source: VertexIdx,
        latency_col: Option<usize>,
    ) -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> Sssp {
        move |sg, _| Sssp {
            source,
            latency_col,
            label: vec![f64::INFINITY; sg.num_vertices()],
            roots: Vec::new(),
        }
    }

    /// Counter: vertices settled (label assigned at least once).
    pub const SETTLED: &'static str = "sssp_settled";
}

impl SubgraphProgram for Sssp {
    type Msg = (VertexIdx, f64);

    fn compute(
        &mut self,
        ctx: &mut Context<'_, (VertexIdx, f64)>,
        msgs: &[Envelope<(VertexIdx, f64)>],
    ) {
        if ctx.superstep() == 0 {
            if let Some(pos) = ctx.subgraph().local_pos(self.source) {
                self.label[pos as usize] = 0.0;
                self.roots.push(pos);
            }
        } else {
            for e in msgs {
                let (v, d) = e.payload;
                let pos = ctx
                    .subgraph()
                    .local_pos(v)
                    .expect("relaxation targets a member vertex");
                if d < self.label[pos as usize] {
                    self.label[pos as usize] = d;
                    self.roots.push(pos);
                }
            }
        }

        if !self.roots.is_empty() {
            let instance = ctx.instance();
            let sg = ctx.subgraph();
            let latencies = self
                .latency_col
                .map(|c| instance.edge_f64(c).expect("latency must be Double"));
            let weight = |sg: &Subgraph, e: tempograph_core::EdgeIdx| -> f64 {
                match latencies {
                    Some(l) => l[sg.edge_pos(e).expect("member edge") as usize],
                    None => 1.0,
                }
            };

            let mut heap: BinaryHeap<Reverse<(F64, u32)>> = BinaryHeap::new();
            for &r in &self.roots {
                heap.push(Reverse((F64(self.label[r as usize]), r)));
            }
            self.roots.clear();

            let mut remote: std::collections::HashMap<
                VertexIdx,
                (tempograph_partition::SubgraphId, f64),
            > = std::collections::HashMap::new();
            while let Some(Reverse((F64(d), u))) = heap.pop() {
                if d > self.label[u as usize] {
                    continue;
                }
                for &(v, e) in sg.local_neighbors(u) {
                    let nd = d + weight(sg, e);
                    if nd < self.label[v as usize] {
                        self.label[v as usize] = nd;
                        heap.push(Reverse((F64(nd), v)));
                    }
                }
                for rn in sg.remote_neighbors(u) {
                    let nd = d + weight(sg, rn.edge);
                    let entry = remote
                        .entry(rn.vertex)
                        .or_insert((rn.subgraph, f64::INFINITY));
                    if nd < entry.1 {
                        *entry = (rn.subgraph, nd);
                    }
                }
            }
            let mut out: Vec<_> = remote.into_iter().collect();
            out.sort_by_key(|a| a.0);
            for (v, (sgid, d)) in out {
                ctx.send_to_subgraph(sgid, (v, d));
            }
        }
        ctx.vote_to_halt();
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, (VertexIdx, f64)>) {
        let mut settled = 0u64;
        for pos in 0..self.label.len() {
            if self.label[pos].is_finite() {
                ctx.emit(ctx.subgraph().vertex_at(pos as u32), self.label[pos]);
                settled += 1;
            }
        }
        if settled > 0 {
            ctx.add_counter(Self::SETTLED, settled);
        }
        ctx.vote_to_halt_timestep();
    }

    // `source` and `latency_col` are configuration, rebuilt by the factory;
    // only the mutable labels and pending roots need to cross a checkpoint.
    fn save_state(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.label.len() as u32);
        for &l in &self.label {
            buf.put_f64_le(l);
        }
        buf.put_u32_le(self.roots.len() as u32);
        for &r in &self.roots {
            buf.put_u32_le(r);
        }
    }

    fn restore_state(&mut self, buf: &mut bytes::Bytes) {
        use bytes::Buf;
        let n = buf.get_u32_le() as usize;
        self.label = (0..n).map(|_| buf.get_f64_le()).collect();
        let n = buf.get_u32_le() as usize;
        self.roots = (0..n).map(|_| buf.get_u32_le()).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_initializes_infinite_labels() {
        use tempograph_core::{AttrType, TemplateBuilder};
        use tempograph_partition::{discover_subgraphs, Partitioning};
        let mut b = TemplateBuilder::new("t", false);
        b.edge_schema().add("w", AttrType::Double);
        for i in 0..3 {
            b.add_vertex(i);
        }
        b.add_edge(0, 0, 1).unwrap();
        b.add_edge(1, 1, 2).unwrap();
        let t = std::sync::Arc::new(b.finalize().unwrap());
        let pg = discover_subgraphs(
            t,
            Partitioning {
                assignment: vec![0, 0, 0],
                k: 1,
            },
        );
        let p = Sssp::factory(VertexIdx(0), Some(0))(&pg.subgraphs()[0], &pg);
        assert!(p.label.iter().all(|l| l.is_infinite()));
    }
}
