//! Subgraph-centric PageRank (extension; cf. the paper's reference [12],
//! "SubGraph Rank: PageRank for subgraph-centric distributed graph
//! processing").
//!
//! One superstep per PageRank iteration: each vertex scatters
//! `rank/out_degree` along its out-edges; intra-subgraph contributions are
//! applied immediately in memory, cross-subgraph contributions travel as
//! batched `(vertex, contribution)` messages. Runs a fixed number of
//! iterations on a single instance (pattern: independent, one timestep).

use std::collections::HashMap;
use tempograph_core::VertexIdx;
use tempograph_engine::{Context, Envelope, SubgraphProgram};
use tempograph_partition::Subgraph;

/// The PageRank program; instantiate via [`PageRank::factory`].
pub struct PageRank {
    iterations: usize,
    damping: f64,
    /// Total vertex count of the template (for uniform init/teleport).
    n: f64,
    /// Current ranks by local position.
    rank: Vec<f64>,
    /// Incoming contributions accumulated for the next iteration.
    incoming: Vec<f64>,
}

impl PageRank {
    /// Build a per-subgraph factory running `iterations` iterations with
    /// the standard damping factor 0.85.
    pub fn factory(
        iterations: usize,
    ) -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> PageRank {
        move |sg, pg| {
            let n = pg.template().num_vertices() as f64;
            PageRank {
                iterations,
                damping: 0.85,
                n,
                rank: vec![1.0 / n; sg.num_vertices()],
                incoming: vec![0.0; sg.num_vertices()],
            }
        }
    }
}

impl SubgraphProgram for PageRank {
    type Msg = Vec<(VertexIdx, f64)>;

    fn compute(
        &mut self,
        ctx: &mut Context<'_, Vec<(VertexIdx, f64)>>,
        msgs: &[Envelope<Vec<(VertexIdx, f64)>>],
    ) {
        let sg = ctx.subgraph();
        // Fold remote contributions from the previous iteration.
        for e in msgs {
            for &(v, c) in &e.payload {
                let pos = sg.local_pos(v).expect("contribution targets member") as usize;
                self.incoming[pos] += c;
            }
        }
        if ctx.superstep() > 0 {
            // Finish iteration `superstep-1`: apply teleport + damping.
            for pos in 0..self.rank.len() {
                self.rank[pos] = (1.0 - self.damping) / self.n + self.damping * self.incoming[pos];
                self.incoming[pos] = 0.0;
            }
        }
        if ctx.superstep() == self.iterations {
            ctx.vote_to_halt();
            return;
        }

        // Scatter this iteration's contributions. Out-degree counts both
        // local and remote out-edges.
        let mut remote_batches: HashMap<tempograph_partition::SubgraphId, Vec<(VertexIdx, f64)>> =
            HashMap::new();
        for pos in 0..self.rank.len() as u32 {
            let local = sg.local_neighbors(pos);
            let remote = sg.remote_neighbors(pos);
            let deg = local.len() + remote.len();
            if deg == 0 {
                continue; // dangling mass is ignored (standard simplification)
            }
            let share = self.rank[pos as usize] / deg as f64;
            for &(v, _) in local {
                self.incoming[v as usize] += share;
            }
            for rn in remote {
                remote_batches
                    .entry(rn.subgraph)
                    .or_default()
                    .push((rn.vertex, share));
            }
        }
        let mut targets: Vec<_> = remote_batches.into_iter().collect();
        targets.sort_by_key(|(sgid, _)| *sgid);
        for (sgid, batch) in targets {
            ctx.send_to_subgraph(sgid, batch);
        }
        // Keep the BSP alive for the next iteration even without messages.
        if ctx.subgraph().num_remote_edges() == 0 {
            ctx.send_to_subgraph(ctx.subgraph().id(), Vec::new());
        }
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, Vec<(VertexIdx, f64)>>) {
        for pos in 0..self.rank.len() as u32 {
            ctx.emit(ctx.subgraph().vertex_at(pos), self.rank[pos as usize]);
        }
        ctx.vote_to_halt_timestep();
    }
}
