//! Community evolution — per-instance clustering with a merged stability
//! series.
//!
//! §II.B motivates the eventually dependent pattern with "perform clustering
//! on each instance and find their intersection to show how communities
//! evolve". This algorithm realises that sketch:
//!
//! * per timestep, **active** vertices (those that tweeted in the interval)
//!   are clustered into *activity components* — connected components over
//!   edges whose endpoints are both active — via distributed hash-min label
//!   propagation across subgraphs (labels are canonical: the minimum active
//!   external vertex id of the component);
//! * each subgraph remembers its members' labels per timestep and, at the
//!   end, counts **stable** vertices — active in consecutive timesteps with
//!   the same community label — sending the per-transition counts to Merge;
//! * the Merge master sums the series and emits
//!   `(transition t→t+1 encoded as VertexIdx(t), stable_count)`.

use tempograph_core::VertexIdx;
use tempograph_engine::{wire, Context, Envelope, SubgraphProgram, WireError, WireMsg};
use tempograph_partition::Subgraph;

/// Messages: superstep label relaxations or merged stability series.
#[derive(Clone, Debug, PartialEq)]
pub enum CommunityMsg {
    /// "Your member vertex `v` borders my active component labelled
    /// `label`."
    Relax(VertexIdx, u64),
    /// Per-transition stable-vertex counts, shipped to the merge master.
    Series(Vec<u64>),
}

impl WireMsg for CommunityMsg {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        match self {
            CommunityMsg::Relax(v, l) => {
                bytes::BufMut::put_u8(buf, 0);
                v.encode(buf);
                l.encode(buf);
            }
            CommunityMsg::Series(s) => {
                bytes::BufMut::put_u8(buf, 1);
                s.encode(buf);
            }
        }
    }

    fn decode(buf: &mut bytes::Bytes) -> Result<Self, WireError> {
        // Explicit tags (lint rule W01): adding a variant must extend this
        // match, and an unknown tag is corruption, not a silent `Series`.
        match wire::get_u8(buf, "CommunityMsg tag")? {
            0 => Ok(CommunityMsg::Relax(
                VertexIdx::decode(buf)?,
                u64::decode(buf)?,
            )),
            1 => Ok(CommunityMsg::Series(Vec::decode(buf)?)),
            tag => Err(WireError::BadTag {
                context: "CommunityMsg",
                tag,
            }),
        }
    }
}

/// The community-evolution program; instantiate via
/// [`CommunityEvolution::factory`].
pub struct CommunityEvolution {
    tweets_col: usize,
    /// This timestep's label per local position (`u64::MAX` = inactive).
    label: Vec<u64>,
    /// Previous timestep's labels.
    prev_label: Vec<u64>,
    /// Stable-vertex count per transition (index t = transition t-1 → t).
    stable_per_transition: Vec<u64>,
}

impl CommunityEvolution {
    /// Merge-phase counter: total stable vertex-transitions.
    pub const STABLE_TOTAL: &'static str = "community_stable_total";

    /// Build a per-subgraph factory; tweets are read from the `TextList`
    /// vertex attribute at `tweets_col`.
    pub fn factory(
        tweets_col: usize,
    ) -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> CommunityEvolution {
        move |sg, _| CommunityEvolution {
            tweets_col,
            label: vec![u64::MAX; sg.num_vertices()],
            prev_label: vec![u64::MAX; sg.num_vertices()],
            stable_per_transition: Vec::new(),
        }
    }

    /// Recompute local activity components and return, per component
    /// member, its canonical label. Uses union-find over local edges whose
    /// endpoints are both active.
    fn local_components(&mut self, ctx: &mut Context<'_, CommunityMsg>) {
        let instance = ctx.instance();
        let sg = ctx.subgraph();
        let tweets = instance
            .vertex_text_list(self.tweets_col)
            .expect("tweets must be a TextList vertex column");
        let active: Vec<bool> = tweets.iter().map(|r| !r.is_empty()).collect();

        let n = sg.num_vertices();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(p: &mut [u32], mut x: u32) -> u32 {
            while p[x as usize] != x {
                let g = p[p[x as usize] as usize];
                p[x as usize] = g;
                x = g;
            }
            x
        }
        for pos in sg.positions() {
            if !active[pos as usize] {
                continue;
            }
            for &(q, _) in sg.local_neighbors(pos) {
                if active[q as usize] {
                    let (a, b) = (find(&mut parent, pos), find(&mut parent, q));
                    if a != b {
                        parent[a as usize] = b;
                    }
                }
            }
        }
        // Canonical label per root: min external vertex id among members.
        let pg = ctx.partitioned_graph();
        let mut root_label: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for pos in 0..n as u32 {
            if active[pos as usize] {
                let r = find(&mut parent, pos);
                let id = pg.template().vertex_id(sg.vertex_at(pos));
                let e = root_label.entry(r).or_insert(u64::MAX);
                *e = (*e).min(id);
            }
        }
        for pos in 0..n as u32 {
            self.label[pos as usize] = if active[pos as usize] {
                root_label[&find(&mut parent, pos)]
            } else {
                u64::MAX
            };
        }
    }

    /// Broadcast boundary labels to neighbouring subgraphs (only across
    /// edges whose local endpoint is active).
    fn broadcast_boundary(&self, ctx: &mut Context<'_, CommunityMsg>) {
        let sg = ctx.subgraph();
        let mut out: Vec<(tempograph_partition::SubgraphId, VertexIdx, u64)> = Vec::new();
        for pos in sg.positions() {
            let l = self.label[pos as usize];
            if l == u64::MAX {
                continue;
            }
            for rn in sg.remote_neighbors(pos) {
                out.push((rn.subgraph, rn.vertex, l));
            }
        }
        out.sort_unstable();
        out.dedup();
        for (sgid, v, l) in out {
            ctx.send_to_subgraph(sgid, CommunityMsg::Relax(v, l));
        }
    }

    /// Apply incoming relaxations: lower a component's label when an active
    /// remote neighbour carries a smaller one. Returns whether anything
    /// changed.
    fn relax(
        &mut self,
        ctx: &mut Context<'_, CommunityMsg>,
        msgs: &[Envelope<CommunityMsg>],
    ) -> bool {
        let sg = ctx.subgraph();
        let mut changed = false;
        // Collect candidate improvements per component label.
        let mut improvements: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for e in msgs {
            if let CommunityMsg::Relax(v, incoming) = &e.payload {
                let pos = sg.local_pos(*v).expect("member") as usize;
                let own = self.label[pos];
                if own != u64::MAX && *incoming < own {
                    let best = improvements.entry(own).or_insert(*incoming);
                    *best = (*best).min(*incoming);
                }
            }
        }
        if !improvements.is_empty() {
            for l in self.label.iter_mut() {
                if let Some(&better) = improvements.get(l) {
                    *l = better;
                    changed = true;
                }
            }
        }
        changed
    }
}

impl SubgraphProgram for CommunityEvolution {
    type Msg = CommunityMsg;

    fn compute(&mut self, ctx: &mut Context<'_, CommunityMsg>, msgs: &[Envelope<CommunityMsg>]) {
        if ctx.superstep() == 0 {
            self.local_components(ctx);
            self.broadcast_boundary(ctx);
        } else if self.relax(ctx, msgs) {
            self.broadcast_boundary(ctx);
        }
        ctx.vote_to_halt();
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, CommunityMsg>) {
        if ctx.timestep() > 0 {
            let stable = self
                .label
                .iter()
                .zip(&self.prev_label)
                .filter(|(a, b)| **a != u64::MAX && a == b)
                .count() as u64;
            self.stable_per_transition.push(stable);
        }
        self.prev_label.copy_from_slice(&self.label);

        if ctx.timestep() + 1 == ctx.num_timesteps() {
            ctx.send_to_merge(CommunityMsg::Series(std::mem::take(
                &mut self.stable_per_transition,
            )));
        }
    }

    fn merge(&mut self, ctx: &mut Context<'_, CommunityMsg>, msgs: &[Envelope<CommunityMsg>]) {
        let master = ctx
            .partitioned_graph()
            .largest_subgraph_in_partition(0)
            .expect("partition 0 non-empty");
        if ctx.superstep() == 0 {
            for e in msgs {
                if let CommunityMsg::Series(s) = &e.payload {
                    ctx.send_to_subgraph(master, CommunityMsg::Series(s.clone()));
                }
            }
        } else if ctx.subgraph().id() == master && !msgs.is_empty() {
            let len = msgs
                .iter()
                .filter_map(|e| match &e.payload {
                    CommunityMsg::Series(s) => Some(s.len()),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let mut totals = vec![0u64; len];
            for e in msgs {
                if let CommunityMsg::Series(s) = &e.payload {
                    for (i, &v) in s.iter().enumerate() {
                        totals[i] += v;
                    }
                }
            }
            for (t, &v) in totals.iter().enumerate() {
                ctx.emit(VertexIdx(t as u32), v as f64);
            }
            ctx.add_counter(Self::STABLE_TOTAL, totals.iter().sum());
        }
        ctx.vote_to_halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn msg_roundtrip() {
        for m in [
            CommunityMsg::Relax(VertexIdx(3), 99),
            CommunityMsg::Series(vec![1, 2, 3]),
            CommunityMsg::Series(vec![]),
        ] {
            let mut buf = BytesMut::new();
            m.encode(&mut buf);
            assert_eq!(CommunityMsg::decode(&mut buf.freeze()).unwrap(), m);
        }
    }
}
