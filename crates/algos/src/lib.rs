//! # tempograph-algos — time-series graph algorithms on TI-BSP
//!
//! The paper's three algorithms (§III) plus the baselines its evaluation
//! compares against:
//!
//! | Algorithm | Pattern | Paper section |
//! |---|---|---|
//! | [`HashtagAggregation`] | eventually dependent | §III.A |
//! | [`MemeTracking`] | sequentially dependent | §III.B |
//! | [`Tdsp`] (time-dependent shortest path) | sequentially dependent | §III.C |
//! | [`Sssp`] (single-instance SSSP/BFS) | single BSP | §IV.C baseline |
//! | [`Wcc`] (connected components) | single BSP | extension |
//! | [`PageRank`] (subgraph-centric) | single BSP | extension, ref [12] |
//! | [`TopNActivity`] | independent | §II.B's "daily Top-N" example |
//!
//! One deliberate deviation from the paper's listings: where Algorithms 1–2
//! thread per-subgraph state (`C*`, `F`) through `SendToNextTimestep`
//! self-messages, these implementations keep that state in the program
//! struct — the engine guarantees one program instance per subgraph for the
//! job's lifetime, so the two are equivalent; cross-timestep *liveness*
//! tokens are still sent where the `While` termination mode needs them.

#![forbid(unsafe_code)]

pub mod community;
pub mod hashtag;
pub mod meme;
pub mod pagerank;
pub mod reachability;
pub mod sssp;
pub mod stats;
pub mod tdsp;
pub mod topn;
pub mod wcc;

pub use community::CommunityEvolution;
pub use hashtag::{HashtagAggregation, HashtagSumCombiner};
pub use meme::{MemeDedupCombiner, MemeTracking};
pub use pagerank::PageRank;
pub use reachability::TemporalReachability;
pub use sssp::{Sssp, SsspCombiner};
pub use stats::InstanceStats;
pub use tdsp::{Tdsp, TdspCombiner};
pub use topn::TopNActivity;
pub use wcc::Wcc;
