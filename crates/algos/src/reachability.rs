//! Temporal reachability over a churning topology (`isExists`-aware).
//!
//! §II.B describes traversal "along the time dimension" via virtual temporal
//! edges, and §II.A introduces the `isExists` convention for slow topology
//! churn. This algorithm combines both: starting from a source vertex at
//! `t0`, a vertex is *reached* at timestep `t` if some already-reached
//! vertex is its neighbour and **both endpoints exist** in instance `gᵗ`.
//! Reached status persists (the traveller waits out a vertex's disappearance
//! at the vertex — information, once delivered, is not lost).
//!
//! Emits `(vertex, first_reached_timestep)`; the counter
//! [`TemporalReachability::REACHED`] tracks per-timestep progress.

use tempograph_core::VertexIdx;
use tempograph_engine::{Context, Envelope, SubgraphProgram};
use tempograph_partition::Subgraph;

/// The temporal-reachability program; instantiate via
/// [`TemporalReachability::factory`].
pub struct TemporalReachability {
    source: VertexIdx,
    exists_col: usize,
    /// Reached flags by local position (persist across timesteps).
    reached: Vec<bool>,
    newly: Vec<u32>,
}

impl TemporalReachability {
    /// Per-timestep counter of newly reached vertices.
    pub const REACHED: &'static str = "temporal_reached";

    /// Build a per-subgraph factory from `source`, reading existence from
    /// the `Bool` vertex attribute at `exists_col` (conventionally
    /// `GraphTemplate::IS_EXISTS`).
    pub fn factory(
        source: VertexIdx,
        exists_col: usize,
    ) -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> TemporalReachability {
        move |sg, _| TemporalReachability {
            source,
            exists_col,
            reached: vec![false; sg.num_vertices()],
            newly: Vec::new(),
        }
    }

    /// BFS from `roots` over *currently existing* vertices; returns remote
    /// notifications.
    fn existing_bfs(
        &mut self,
        ctx: &mut Context<'_, VertexIdx>,
        roots: Vec<u32>,
    ) -> Vec<(tempograph_partition::SubgraphId, VertexIdx)> {
        let instance = ctx.instance();
        let sg = ctx.subgraph();
        let exists = instance
            .vertex_bool(self.exists_col)
            .expect("isExists must be a Bool vertex column");

        let mut remote = Vec::new();
        let mut stack = roots;
        while let Some(u) = stack.pop() {
            // A vanished vertex holds its knowledge but cannot transmit.
            if !exists[u as usize] {
                continue;
            }
            for &(v, _e) in sg.local_neighbors(u) {
                if !self.reached[v as usize] && exists[v as usize] {
                    self.reached[v as usize] = true;
                    self.newly.push(v);
                    stack.push(v);
                }
            }
            for rn in sg.remote_neighbors(u) {
                remote.push((rn.subgraph, rn.vertex));
            }
        }
        remote.sort_unstable();
        remote.dedup();
        remote
    }
}

impl SubgraphProgram for TemporalReachability {
    type Msg = VertexIdx;

    fn compute(&mut self, ctx: &mut Context<'_, VertexIdx>, msgs: &[Envelope<VertexIdx>]) {
        let roots: Vec<u32> = if ctx.superstep() == 0 {
            if ctx.timestep() == 0 {
                if let Some(pos) = ctx.subgraph().local_pos(self.source) {
                    let instance = ctx.instance();
                    let exists = instance.vertex_bool(self.exists_col).expect("isExists");
                    if exists[pos as usize] {
                        self.reached[pos as usize] = true;
                        self.newly.push(pos);
                        vec![pos]
                    } else {
                        Vec::new()
                    }
                } else {
                    Vec::new()
                }
            } else {
                // Resume from everything reached so far.
                (0..self.reached.len() as u32)
                    .filter(|&p| self.reached[p as usize])
                    .collect()
            }
        } else {
            let instance = ctx.instance();
            let exists = instance.vertex_bool(self.exists_col).expect("isExists");
            let mut roots = Vec::new();
            for e in msgs {
                let pos = ctx
                    .subgraph()
                    .local_pos(e.payload)
                    .expect("notification targets member");
                if !self.reached[pos as usize] && exists[pos as usize] {
                    self.reached[pos as usize] = true;
                    self.newly.push(pos);
                    roots.push(pos);
                }
            }
            roots
        };

        if !roots.is_empty() {
            for (sgid, v) in self.existing_bfs(ctx, roots) {
                ctx.send_to_subgraph(sgid, v);
            }
        }
        ctx.vote_to_halt();
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, VertexIdx>) {
        let newly = std::mem::take(&mut self.newly);
        if !newly.is_empty() {
            ctx.add_counter(Self::REACHED, newly.len() as u64);
            for pos in newly {
                ctx.emit(ctx.subgraph().vertex_at(pos), ctx.timestep() as f64);
            }
        }
        ctx.vote_to_halt_timestep();
        let all = self.reached.iter().all(|&r| r);
        if !all && ctx.timestep() + 1 < ctx.num_timesteps() {
            // Keep the While loop alive until the whole subgraph is reached.
            ctx.send_to_next_timestep(self.source);
        }
    }
}
