//! Per-instance Top-N activity — the independent pattern (§II.B).
//!
//! The paper motivates the independent pattern with "finding the daily
//! Top-N central vertices in a year … in a pleasingly temporally parallel
//! manner". This program finds, per timestep, the N vertices with the most
//! tweets in each subgraph and emits them — every instance is processed in
//! isolation, so it also serves as the workload for the temporal-parallelism
//! ablation (A1).

use tempograph_core::kernels;
use tempograph_engine::{Context, Envelope, SubgraphProgram};
use tempograph_partition::Subgraph;

/// The Top-N program; instantiate via [`TopNActivity::factory`].
pub struct TopNActivity {
    n: usize,
    tweets_col: usize,
}

impl TopNActivity {
    /// Build a per-subgraph factory reporting the top `n` most-active
    /// vertices per timestep, by tweet count in the `TextList` vertex
    /// attribute at `tweets_col`.
    pub fn factory(
        n: usize,
        tweets_col: usize,
    ) -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> TopNActivity {
        move |_, _| TopNActivity { n, tweets_col }
    }

    /// Counter: total tweets observed per timestep.
    pub const TWEETS: &'static str = "topn_tweets";
}

impl SubgraphProgram for TopNActivity {
    type Msg = ();

    fn compute(&mut self, ctx: &mut Context<'_, ()>, _msgs: &[Envelope<()>]) {
        if ctx.superstep() == 0 {
            let instance = ctx.instance();
            let sg = ctx.subgraph();
            let tweets = instance
                .vertex_text_list(self.tweets_col)
                .expect("tweets attribute must be a TextList vertex column");
            let lens: Vec<u64> = tweets.iter().map(|row| row.len() as u64).collect();
            let total = kernels::sum_u64(&lens);
            // `top_n_desc` orders by (count desc, position asc) — the same
            // tie order the old full sort produced — and zero counts sort
            // last, so cutting at the first zero drops inactive vertices.
            let top: Vec<(tempograph_core::VertexIdx, f64)> = kernels::top_n_desc(&lens, self.n)
                .into_iter()
                .take_while(|&(_, count)| count > 0)
                .map(|(pos, count)| (sg.vertex_at(pos as u32), count as f64))
                .collect();
            for (v, count) in top {
                ctx.emit(v, count);
            }
            if total > 0 {
                ctx.add_counter(Self::TWEETS, total);
            }
        }
        ctx.vote_to_halt();
    }
}
