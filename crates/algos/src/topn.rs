//! Per-instance Top-N activity — the independent pattern (§II.B).
//!
//! The paper motivates the independent pattern with "finding the daily
//! Top-N central vertices in a year … in a pleasingly temporally parallel
//! manner". This program finds, per timestep, the N vertices with the most
//! tweets in each subgraph and emits them — every instance is processed in
//! isolation, so it also serves as the workload for the temporal-parallelism
//! ablation (A1).

use tempograph_engine::{Context, Envelope, SubgraphProgram};
use tempograph_partition::Subgraph;

/// The Top-N program; instantiate via [`TopNActivity::factory`].
pub struct TopNActivity {
    n: usize,
    tweets_col: usize,
}

impl TopNActivity {
    /// Build a per-subgraph factory reporting the top `n` most-active
    /// vertices per timestep, by tweet count in the `TextList` vertex
    /// attribute at `tweets_col`.
    pub fn factory(
        n: usize,
        tweets_col: usize,
    ) -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> TopNActivity {
        move |_, _| TopNActivity { n, tweets_col }
    }

    /// Counter: total tweets observed per timestep.
    pub const TWEETS: &'static str = "topn_tweets";
}

impl SubgraphProgram for TopNActivity {
    type Msg = ();

    fn compute(&mut self, ctx: &mut Context<'_, ()>, _msgs: &[Envelope<()>]) {
        if ctx.superstep() == 0 {
            let instance = ctx.instance();
            let sg = ctx.subgraph();
            let tweets = instance
                .vertex_text_list(self.tweets_col)
                .expect("tweets attribute must be a TextList vertex column");
            let mut counts: Vec<(usize, u32)> = tweets
                .iter()
                .enumerate()
                .filter(|(_, row)| !row.is_empty())
                .map(|(pos, row)| (row.len(), pos as u32))
                .collect();
            let total: u64 = counts.iter().map(|&(c, _)| c as u64).sum();
            counts.sort_unstable_by_key(|&(c, pos)| (std::cmp::Reverse(c), pos));
            counts.truncate(self.n);
            let top: Vec<(tempograph_core::VertexIdx, f64)> = counts
                .into_iter()
                .map(|(count, pos)| (sg.vertex_at(pos), count as f64))
                .collect();
            for (v, count) in top {
                ctx.emit(v, count);
            }
            if total > 0 {
                ctx.add_counter(Self::TWEETS, total);
            }
        }
        ctx.vote_to_halt();
    }
}
