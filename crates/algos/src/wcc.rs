//! Weakly Connected Components — subgraph-centric label propagation.
//!
//! Each subgraph is internally connected by construction, so it carries a
//! single component label: initially the minimum external vertex id of its
//! members. Supersteps exchange labels over remote edges and keep the
//! minimum (hash-min over the *subgraph* graph), converging in
//! `O(subgraph-graph diameter)` supersteps — the canonical demonstration of
//! why subgraph-centric beats vertex-centric on high-diameter graphs [11].

use tempograph_engine::{Context, Envelope, SubgraphProgram};
use tempograph_partition::{Subgraph, SubgraphId};

/// The WCC program; instantiate via [`Wcc::factory`].
pub struct Wcc {
    /// Current component label: min external vertex id seen so far.
    label: u64,
    changed: bool,
}

impl Wcc {
    /// Build a per-subgraph factory.
    pub fn factory() -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> Wcc {
        |sg, pg| Wcc {
            label: sg
                .vertices()
                .iter()
                .map(|&v| pg.template().vertex_id(v))
                .min()
                .unwrap_or(u64::MAX),
            changed: true,
        }
    }
}

impl SubgraphProgram for Wcc {
    type Msg = u64;

    fn compute(&mut self, ctx: &mut Context<'_, u64>, msgs: &[Envelope<u64>]) {
        if ctx.superstep() > 0 {
            self.changed = false;
            for e in msgs {
                if e.payload < self.label {
                    self.label = e.payload;
                    self.changed = true;
                }
            }
        }
        if self.changed {
            // Broadcast to every neighbouring subgraph (deduplicated).
            let mut targets: Vec<SubgraphId> = Vec::new();
            for pos in ctx.subgraph().positions() {
                for rn in ctx.subgraph().remote_neighbors(pos) {
                    targets.push(rn.subgraph);
                }
            }
            targets.sort_unstable();
            targets.dedup();
            for t in targets {
                ctx.send_to_subgraph(t, self.label);
            }
        }
        ctx.vote_to_halt();
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, u64>) {
        // One emit per vertex: its component label.
        let verts: Vec<tempograph_core::VertexIdx> = ctx.subgraph().vertices().to_vec();
        for v in verts {
            ctx.emit(v, self.label as f64);
        }
        ctx.vote_to_halt_timestep();
    }

    fn save_state(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u64_le(self.label);
        buf.put_u8(self.changed as u8);
    }

    fn restore_state(&mut self, buf: &mut bytes::Bytes) {
        use bytes::Buf;
        self.label = buf.get_u64_le();
        self.changed = buf.get_u8() != 0;
    }
}
