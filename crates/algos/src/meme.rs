//! Meme Tracking (paper §III.B, Algorithm 1).
//!
//! A temporal BFS for a meme `µ` over space and time: at `t0` every vertex
//! already carrying the meme seeds the coloured set; at each later instance
//! the BFS resumes from the cumulative coloured set `C*` and expands along
//! contiguous vertices whose *current* tweets contain the meme, crossing
//! into neighbouring subgraphs through remote-edge notifications. Each
//! timestep's newly coloured frontier `Cₜ` is emitted (vertex, timestep),
//! reproducing the paper's "when did the meme first reach each user"
//! output and the Fig. 7c per-timestep colouring counts.

use tempograph_core::VertexIdx;
use tempograph_engine::{Combiner, Context, Envelope, SubgraphProgram};
use tempograph_partition::Subgraph;

/// Sender-side dedup-combiner for meme notifications: a notification is
/// just the target vertex id, so duplicates bound for the same vertex
/// (from different subgraphs of one partition) collapse to one. "Keep the
/// first of identical payloads" is trivially associative and commutative,
/// and the receiver ignores repeat notifications anyway.
pub struct MemeDedupCombiner;

impl Combiner<VertexIdx> for MemeDedupCombiner {
    fn key(&self, msg: &VertexIdx) -> Option<u64> {
        Some(msg.0 as u64)
    }

    fn combine(&self, _acc: &mut VertexIdx, _incoming: VertexIdx) {
        // Payloads with equal keys are identical; keep the accumulator.
    }
}

/// The meme-tracking program; instantiate via [`MemeTracking::factory`].
pub struct MemeTracking {
    meme: String,
    tweets_col: usize,
    /// Cumulative coloured set `C*`, by local position.
    colored: Vec<bool>,
    /// Positions coloured during the current timestep (`Cₜ`).
    newly_colored: Vec<u32>,
}

impl MemeTracking {
    /// Build a per-subgraph factory tracking `meme`, reading tweets from the
    /// `TextList` vertex attribute at `tweets_col`.
    pub fn factory(
        meme: impl Into<String>,
        tweets_col: usize,
    ) -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> MemeTracking {
        let meme = meme.into();
        move |sg, _| MemeTracking {
            meme: meme.clone(),
            tweets_col,
            colored: vec![false; sg.num_vertices()],
            newly_colored: Vec::new(),
        }
    }

    /// Name of the counter tracking vertices coloured per timestep
    /// (the paper's Fig. 7c series).
    pub const COLORED: &'static str = "meme_colored";

    /// BFS from `roots` along vertices whose current tweets contain the
    /// meme. Colours newly reached meme vertices; returns remote-edge
    /// notifications `(subgraph, vertex)` from meme-carrying vertices.
    fn meme_bfs(
        &mut self,
        ctx: &mut Context<'_, VertexIdx>,
        roots: Vec<u32>,
    ) -> Vec<(tempograph_partition::SubgraphId, VertexIdx)> {
        let instance = ctx.instance();
        let sg = ctx.subgraph();
        let tweets = instance
            .vertex_text_list(self.tweets_col)
            .expect("tweets attribute must be a TextList vertex column");
        let has_meme = |pos: u32| tweets[pos as usize].iter().any(|t| t == &self.meme);

        let mut remote: Vec<(tempograph_partition::SubgraphId, VertexIdx)> = Vec::new();
        let mut stack = roots;
        let mut queued = vec![false; sg.num_vertices()];
        for &r in &stack {
            queued[r as usize] = true;
        }
        while let Some(u) = stack.pop() {
            // Expand to local neighbours that carry the meme now.
            for &(v, _e) in sg.local_neighbors(u) {
                if !self.colored[v as usize] && !queued[v as usize] && has_meme(v) {
                    self.colored[v as usize] = true;
                    self.newly_colored.push(v);
                    queued[v as usize] = true;
                    stack.push(v);
                }
            }
            // Notify subgraphs across remote edges so they resume the
            // traversal next superstep (Algorithm 1 lines 11–13).
            for rn in sg.remote_neighbors(u) {
                remote.push((rn.subgraph, rn.vertex));
            }
        }
        remote.sort_unstable_by_key(|&(sgid, v)| (sgid, v));
        remote.dedup();
        remote
    }
}

impl SubgraphProgram for MemeTracking {
    type Msg = VertexIdx;

    fn compute(&mut self, ctx: &mut Context<'_, VertexIdx>, msgs: &[Envelope<VertexIdx>]) {
        let roots: Vec<u32> = if ctx.superstep() == 0 {
            if ctx.timestep() == 0 {
                // Seed: vertices already carrying the meme at t0
                // (Algorithm 1 line 4).
                let instance = ctx.instance();
                let tweets = instance
                    .vertex_text_list(self.tweets_col)
                    .expect("tweets attribute must be a TextList vertex column");
                let mut seeds = Vec::new();
                for pos in ctx.subgraph().positions() {
                    if tweets[pos as usize].iter().any(|t| t == &self.meme) {
                        self.colored[pos as usize] = true;
                        self.newly_colored.push(pos);
                        seeds.push(pos);
                    }
                }
                seeds
            } else {
                // Resume from the cumulative coloured set C*
                // (Algorithm 1 line 6).
                (0..self.colored.len() as u32)
                    .filter(|&p| self.colored[p as usize])
                    .collect()
            }
        } else {
            // Remote notifications: adopt vertices that carry the meme now
            // (Algorithm 1 line 8).
            let instance = ctx.instance();
            let tweets = instance
                .vertex_text_list(self.tweets_col)
                .expect("tweets attribute");
            let mut roots = Vec::new();
            for e in msgs {
                let pos = ctx
                    .subgraph()
                    .local_pos(e.payload)
                    .expect("notification targets a member vertex");
                if !self.colored[pos as usize]
                    && tweets[pos as usize].iter().any(|t| t == &self.meme)
                {
                    self.colored[pos as usize] = true;
                    self.newly_colored.push(pos);
                    roots.push(pos);
                }
            }
            roots
        };

        if !roots.is_empty() {
            for (sgid, v) in self.meme_bfs(ctx, roots) {
                ctx.send_to_subgraph(sgid, v);
            }
        }
        ctx.vote_to_halt();
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, VertexIdx>) {
        // Print the horizon C_t (Algorithm 1 lines 17–20).
        let newly = std::mem::take(&mut self.newly_colored);
        if !newly.is_empty() {
            ctx.add_counter(Self::COLORED, newly.len() as u64);
            for pos in newly {
                ctx.emit(ctx.subgraph().vertex_at(pos), ctx.timestep() as f64);
            }
        }
        ctx.vote_to_halt_timestep();
    }

    // `meme` and `tweets_col` are configuration, rebuilt by the factory;
    // the cumulative coloured set C* (and any frontier not yet flushed by
    // `end_of_timestep`) is the recoverable state.
    fn save_state(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.colored.len() as u32);
        for &c in &self.colored {
            buf.put_u8(c as u8);
        }
        buf.put_u32_le(self.newly_colored.len() as u32);
        for &p in &self.newly_colored {
            buf.put_u32_le(p);
        }
    }

    fn restore_state(&mut self, buf: &mut bytes::Bytes) {
        use bytes::Buf;
        let n = buf.get_u32_le() as usize;
        self.colored = (0..n).map(|_| buf.get_u8() != 0).collect();
        let n = buf.get_u32_le() as usize;
        self.newly_colored = (0..n).map(|_| buf.get_u32_le()).collect();
    }
}

#[cfg(test)]
mod tests {
    // Engine-level behaviour is exercised in the workspace integration
    // tests; here we only check factory wiring.
    use super::*;
    use std::sync::Arc;
    use tempograph_core::{AttrType, TemplateBuilder};
    use tempograph_partition::{discover_subgraphs, Partitioning};

    #[test]
    fn factory_sizes_state_to_subgraph() {
        let mut b = TemplateBuilder::new("t", false);
        b.vertex_schema().add("tweets", AttrType::TextList);
        for i in 0..5 {
            b.add_vertex(i);
        }
        b.add_edge(0, 0, 1).unwrap();
        let t = Arc::new(b.finalize().unwrap());
        let pg = discover_subgraphs(
            t,
            Partitioning {
                assignment: vec![0; 5],
                k: 1,
            },
        );
        let factory = MemeTracking::factory("#x", 0);
        for sg in pg.subgraphs() {
            let p = factory(sg, &pg);
            assert_eq!(p.colored.len(), sg.num_vertices());
            assert_eq!(p.meme, "#x");
        }
    }
}
