//! Hashtag Aggregation (paper §III.A) — the eventually dependent pattern.
//!
//! Every timestep, each subgraph counts occurrences of one hashtag among its
//! vertices' tweets and ships the count to Merge via `SendMessageToMerge`.
//! In the Merge BSP each subgraph assembles its per-timestep `hash[]` list
//! (one message per timestep, delivered in order) and forwards it to the
//! largest subgraph of partition 0 — the paper's stand-in for a
//! `Master.Compute` — which aggregates all lists element-wise.
//!
//! The master emits one value per timestep: `emit(VertexIdx(t), count_t)`
//! (the vertex field carries the timestep index; this is the algorithm's
//! tabular output, not a per-vertex result).

use tempograph_core::{kernels, VertexIdx};
use tempograph_engine::{Combiner, Context, Envelope, SubgraphProgram};
use tempograph_partition::Subgraph;

/// Sender-side sum-combiner for the Merge BSP: the per-timestep count
/// vectors every subgraph forwards to the master are summed element-wise
/// per partition before crossing the wire, so the master receives one
/// partial-sum vector per partition instead of one vector per subgraph.
/// Element-wise addition is associative and commutative, and the master
/// sums whatever it receives — totals are unchanged. (The per-timestep
/// `SendMessageToMerge` counts never pass through routing, so their
/// chronological ordering is untouched.)
pub struct HashtagSumCombiner;

impl Combiner<Vec<u64>> for HashtagSumCombiner {
    fn key(&self, _msg: &Vec<u64>) -> Option<u64> {
        Some(0)
    }

    fn combine(&self, acc: &mut Vec<u64>, incoming: Vec<u64>) {
        if incoming.len() > acc.len() {
            acc.resize(incoming.len(), 0);
        }
        kernels::add_assign_u64(acc, &incoming);
    }
}

/// The hashtag-aggregation program; instantiate via
/// [`HashtagAggregation::factory`].
pub struct HashtagAggregation {
    hashtag: String,
    tweets_col: usize,
}

impl HashtagAggregation {
    /// Build a per-subgraph factory counting `hashtag` occurrences in the
    /// `TextList` vertex attribute at `tweets_col`.
    pub fn factory(
        hashtag: impl Into<String>,
        tweets_col: usize,
    ) -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> HashtagAggregation {
        let hashtag = hashtag.into();
        move |_, _| HashtagAggregation {
            hashtag: hashtag.clone(),
            tweets_col,
        }
    }

    /// Merge-phase counter holding the total count across all timesteps.
    pub const TOTAL: &'static str = "hashtag_total";
}

impl SubgraphProgram for HashtagAggregation {
    type Msg = Vec<u64>;

    fn compute(&mut self, ctx: &mut Context<'_, Vec<u64>>, _msgs: &[Envelope<Vec<u64>>]) {
        if ctx.superstep() == 0 {
            let instance = ctx.instance();
            let tweets = instance
                .vertex_text_list(self.tweets_col)
                .expect("tweets attribute must be a TextList vertex column");
            let count: u64 = tweets
                .iter()
                .map(|row| row.iter().filter(|t| *t == &self.hashtag).count() as u64)
                .sum();
            ctx.send_to_merge(vec![count]);
        }
        ctx.vote_to_halt();
    }

    fn merge(&mut self, ctx: &mut Context<'_, Vec<u64>>, msgs: &[Envelope<Vec<u64>>]) {
        let master = ctx
            .partitioned_graph()
            .largest_subgraph_in_partition(0)
            .expect("partition 0 has at least one subgraph");
        if ctx.superstep() == 0 {
            // One message per timestep, in chronological order: build
            // hash[] and forward it to the master subgraph.
            let hash: Vec<u64> = msgs.iter().map(|e| e.payload[0]).collect();
            ctx.send_to_subgraph(master, hash);
        } else if ctx.subgraph().id() == master && !msgs.is_empty() {
            let timesteps = msgs.iter().map(|e| e.payload.len()).max().unwrap_or(0);
            let mut totals = vec![0u64; timesteps];
            for e in msgs {
                kernels::add_assign_u64(&mut totals, &e.payload);
            }
            for (t, &c) in totals.iter().enumerate() {
                ctx.emit(VertexIdx(t as u32), c as f64);
            }
            ctx.add_counter(Self::TOTAL, kernels::sum_u64(&totals));
        }
        ctx.vote_to_halt();
    }

    // No `save_state`/`restore_state` overrides: `hashtag` and `tweets_col`
    // are pure configuration, rebuilt by the factory on recovery. The
    // per-timestep counts live in the merge inbox, which the engine
    // checkpoints itself — the default no-ops are correct here.
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tempograph_core::{AttrType, TemplateBuilder};
    use tempograph_partition::{discover_subgraphs, Partitioning};

    #[test]
    fn factory_captures_hashtag() {
        let mut b = TemplateBuilder::new("t", false);
        b.vertex_schema().add("tweets", AttrType::TextList);
        b.add_vertex(0);
        let t = Arc::new(b.finalize().unwrap());
        let pg = discover_subgraphs(
            t,
            Partitioning {
                assignment: vec![0],
                k: 1,
            },
        );
        let p = HashtagAggregation::factory("#rust", 0)(&pg.subgraphs()[0], &pg);
        assert_eq!(p.hashtag, "#rust");
        assert_eq!(p.tweets_col, 0);
    }
}
