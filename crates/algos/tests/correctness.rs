//! Algorithm correctness: every distributed TI-BSP algorithm is validated
//! against an independent single-threaded reference implementation on
//! randomly generated datasets, across several partitionings.

use std::collections::HashMap;
use std::sync::Arc;
use tempograph_algos::{HashtagAggregation, MemeTracking, PageRank, Sssp, Tdsp, TopNActivity, Wcc};
use tempograph_core::{GraphTemplate, TimeSeriesCollection, VertexIdx};
use tempograph_engine::{run_job, InstanceSource, JobConfig};
use tempograph_gen::{
    generate_road_latencies, generate_sir_tweets, road_network, RoadLatencyConfig, RoadNetConfig,
    SirConfig, LATENCY_ATTR, TWEETS_ATTR,
};
use tempograph_partition::{
    discover_subgraphs, MultilevelPartitioner, PartitionedGraph, Partitioner,
};

fn road(width: usize, height: usize, seed: u64) -> Arc<GraphTemplate> {
    Arc::new(road_network(&RoadNetConfig {
        width,
        height,
        seed,
        ..Default::default()
    }))
}

fn partitioned(t: &Arc<GraphTemplate>, k: usize) -> Arc<PartitionedGraph> {
    let p = MultilevelPartitioner::default().partition(t, k);
    Arc::new(discover_subgraphs(t.clone(), p))
}

/// Symmetric adjacency (vertex, edge) pairs — handles directed templates.
fn sym_adj(t: &GraphTemplate) -> Vec<Vec<(u32, u32)>> {
    let mut adj = vec![Vec::new(); t.num_vertices()];
    for e in t.edges() {
        let (s, d) = t.endpoints(e);
        adj[s.idx()].push((d.0, e.0));
        adj[d.idx()].push((s.0, e.0));
    }
    adj
}

// ---- reference implementations ------------------------------------------

/// Reference discrete-time TDSP (paper semantics: a crossing must complete
/// within the period it departs in; waiting at vertices until the next
/// period boundary is allowed).
fn ref_tdsp(coll: &TimeSeriesCollection, source: VertexIdx) -> Vec<f64> {
    let t = coll.template();
    let delta = coll.period() as f64;
    let n = t.num_vertices();
    let adj = sym_adj(t);
    let mut dist = vec![f64::INFINITY; n];
    dist[source.idx()] = 0.0;

    for step in 0..coll.len() {
        let horizon = (step as f64 + 1.0) * delta;
        let departure = step as f64 * delta;
        let lat = coll.get(step).unwrap().edge_f64(LATENCY_ATTR).unwrap();
        // Working labels: finalized vertices depart at max(dist, step·δ).
        let mut label: Vec<f64> = dist
            .iter()
            .map(|&d| {
                if d.is_finite() {
                    d.max(departure)
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        // Dijkstra bounded by the horizon.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> = (0..n as u32)
            .filter(|&v| label[v as usize].is_finite())
            .map(|v| std::cmp::Reverse((label[v as usize].to_bits(), v)))
            .collect();
        while let Some(std::cmp::Reverse((bits, u))) = heap.pop() {
            let d = f64::from_bits(bits);
            if d > label[u as usize] {
                continue;
            }
            for &(v, e) in &adj[u as usize] {
                let arrival = d + lat[e as usize];
                if arrival <= horizon && arrival < label[v as usize] {
                    label[v as usize] = arrival;
                    heap.push(std::cmp::Reverse((arrival.to_bits(), v)));
                }
            }
        }
        for v in 0..n {
            if label[v] < dist[v] && !dist[v].is_finite() {
                dist[v] = label[v];
            }
        }
    }
    dist
}

/// Reference temporal meme BFS (paper §III.B semantics).
fn ref_meme(coll: &TimeSeriesCollection, meme: &str) -> HashMap<VertexIdx, usize> {
    let t = coll.template();
    let adj = sym_adj(t);
    let mut colored_at: HashMap<VertexIdx, usize> = HashMap::new();
    for step in 0..coll.len() {
        let tweets = coll
            .get(step)
            .unwrap()
            .vertex_text_list(TWEETS_ATTR)
            .unwrap();
        let has = |v: usize| tweets[v].iter().any(|x| x == meme);
        let mut stack: Vec<u32> = if step == 0 {
            let seeds: Vec<u32> = (0..t.num_vertices() as u32)
                .filter(|&v| has(v as usize))
                .collect();
            for &s in &seeds {
                colored_at.insert(VertexIdx(s), 0);
            }
            seeds
        } else {
            colored_at.keys().map(|v| v.0).collect()
        };
        while let Some(u) = stack.pop() {
            for &(v, _) in &adj[u as usize] {
                if !colored_at.contains_key(&VertexIdx(v)) && has(v as usize) {
                    colored_at.insert(VertexIdx(v), step);
                    stack.push(v);
                }
            }
        }
    }
    colored_at
}

/// Reference single-instance Dijkstra on the full template.
fn ref_sssp(t: &GraphTemplate, lat: Option<&[f64]>, source: VertexIdx) -> Vec<f64> {
    let adj = sym_adj(t);
    let mut dist = vec![f64::INFINITY; t.num_vertices()];
    dist[source.idx()] = 0.0;
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((0.0f64.to_bits(), source.0)));
    while let Some(std::cmp::Reverse((bits, u))) = heap.pop() {
        let d = f64::from_bits(bits);
        if d > dist[u as usize] {
            continue;
        }
        for &(v, e) in &adj[u as usize] {
            let w = lat.map_or(1.0, |l| l[e as usize]);
            if d + w < dist[v as usize] {
                dist[v as usize] = d + w;
                heap.push(std::cmp::Reverse(((d + w).to_bits(), v)));
            }
        }
    }
    dist
}

// ---- TDSP -----------------------------------------------------------------

#[test]
fn tdsp_matches_reference_across_partitionings() {
    let t = road(12, 12, 0xBEEF);
    let coll = Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: 30,
            period: 60,
            min_latency: 5.0,
            max_latency: 80.0,
            seed: 7,
            ..Default::default()
        },
    ));
    let source = VertexIdx(0);
    let expect = ref_tdsp(&coll, source);
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();

    for k in [1, 2, 3, 5] {
        let pg = partitioned(&t, k);
        let result = run_job(
            &pg,
            &InstanceSource::Memory(coll.clone()),
            Tdsp::factory(source, lat_col),
            JobConfig::sequentially_dependent(30).while_active(30),
        );
        let mut got = vec![f64::INFINITY; t.num_vertices()];
        for e in &result.emitted {
            got[e.vertex.idx()] = e.value;
        }
        for v in 0..t.num_vertices() {
            assert!(
                (got[v] - expect[v]).abs() < 1e-9
                    || (got[v].is_infinite() && expect[v].is_infinite()),
                "k={k} vertex {v}: engine {} vs reference {}",
                got[v],
                expect[v]
            );
        }
    }
}

#[test]
fn tdsp_with_one_huge_period_degenerates_to_sssp() {
    let t = road(10, 10, 3);
    let coll = Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: 1,
            period: 1_000_000, // horizon covers any path
            min_latency: 1.0,
            max_latency: 9.0,
            seed: 11,
            ..Default::default()
        },
    ));
    let lat = coll
        .get(0)
        .unwrap()
        .edge_f64(LATENCY_ATTR)
        .unwrap()
        .to_vec();
    let expect = ref_sssp(&t, Some(&lat), VertexIdx(0));
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let pg = partitioned(&t, 3);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        Tdsp::factory(VertexIdx(0), lat_col),
        JobConfig::sequentially_dependent(1),
    );
    let mut got = vec![f64::INFINITY; t.num_vertices()];
    for e in &result.emitted {
        got[e.vertex.idx()] = e.value;
    }
    for v in 0..t.num_vertices() {
        assert!(
            (got[v] - expect[v]).abs() < 1e-9,
            "vertex {v}: {} vs {}",
            got[v],
            expect[v]
        );
    }
}

#[test]
fn tdsp_emits_monotone_finalization_times() {
    let t = road(8, 8, 5);
    let coll = Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: 20,
            period: 40,
            min_latency: 2.0,
            max_latency: 39.0,
            seed: 2,
            ..Default::default()
        },
    ));
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let pg = partitioned(&t, 2);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        Tdsp::factory(VertexIdx(0), lat_col),
        JobConfig::sequentially_dependent(20).while_active(20),
    );
    // A vertex finalized at timestep t must have tdsp ≤ (t+1)·δ and > t-th
    // horizon only if finalized later… check the defining invariant:
    for e in &result.emitted {
        let horizon = (e.timestep as f64 + 1.0) * 40.0;
        assert!(
            e.value <= horizon + 1e-9,
            "tdsp {} exceeds its finalization horizon {horizon}",
            e.value
        );
    }
    // Each vertex is emitted at most once.
    let mut seen = std::collections::HashSet::new();
    for e in &result.emitted {
        assert!(seen.insert(e.vertex), "vertex emitted twice");
    }
}

// ---- MEME -------------------------------------------------------------------

#[test]
fn meme_tracking_matches_reference() {
    let t = road(15, 15, 0xC0FFEE);
    let cfg = SirConfig {
        timesteps: 25,
        hit_prob: 0.4,
        initial_infected: 4,
        infectious_steps: 3,
        background_rate: 0.05,
        ..Default::default()
    };
    let coll = Arc::new(generate_sir_tweets(t.clone(), &cfg));
    let expect = ref_meme(&coll, &cfg.meme);
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();

    for k in [1, 3, 4] {
        let pg = partitioned(&t, k);
        let result = run_job(
            &pg,
            &InstanceSource::Memory(coll.clone()),
            MemeTracking::factory(cfg.meme.clone(), tweets_col),
            JobConfig::sequentially_dependent(25),
        );
        let got: HashMap<VertexIdx, usize> = result
            .emitted
            .iter()
            .map(|e| (e.vertex, e.value as usize))
            .collect();
        assert_eq!(got.len(), expect.len(), "k={k}: coloured set size");
        for (v, &step) in &expect {
            assert_eq!(got.get(v), Some(&step), "k={k}: vertex {v:?} colour time");
        }
        // Counter totals match emitted counts.
        let counted: u64 = (0..result.timesteps_run)
            .map(|s| result.counter_at(MemeTracking::COLORED, s))
            .sum();
        assert_eq!(counted as usize, expect.len());
    }
}

#[test]
fn meme_with_absent_meme_colors_nothing() {
    let t = road(8, 8, 1);
    let coll = Arc::new(generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: 5,
            initial_infected: 0,
            background_rate: 0.2,
            ..Default::default()
        },
    ));
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let pg = partitioned(&t, 2);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        MemeTracking::factory("#nonexistent", tweets_col),
        JobConfig::sequentially_dependent(5),
    );
    assert!(result.emitted.is_empty());
}

// ---- HASH ---------------------------------------------------------------------

#[test]
fn hashtag_aggregation_matches_direct_count() {
    let t = road(12, 12, 0xAB);
    let cfg = SirConfig {
        timesteps: 15,
        hit_prob: 0.3,
        initial_infected: 5,
        background_rate: 0.1,
        ..Default::default()
    };
    let coll = Arc::new(generate_sir_tweets(t.clone(), &cfg));
    // Direct per-timestep count of the meme hashtag.
    let expect: Vec<u64> = (0..15)
        .map(|s| {
            let tweets = coll.get(s).unwrap().vertex_text_list(TWEETS_ATTR).unwrap();
            tweets
                .iter()
                .map(|row| row.iter().filter(|x| *x == &cfg.meme).count() as u64)
                .sum()
        })
        .collect();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();

    for k in [1, 2, 4] {
        let pg = partitioned(&t, k);
        let result = run_job(
            &pg,
            &InstanceSource::Memory(coll.clone()),
            HashtagAggregation::factory(cfg.meme.clone(), tweets_col),
            JobConfig::eventually_dependent(15),
        );
        // Master emits (timestep-as-vertex, count) in the merge phase.
        let mut got = vec![0u64; 15];
        for e in &result.emitted {
            got[e.vertex.idx()] = e.value as u64;
        }
        assert_eq!(got, expect, "k={k}");
        let total: u64 = result
            .merge_counters
            .get(HashtagAggregation::TOTAL)
            .unwrap()
            .iter()
            .sum();
        assert_eq!(total, expect.iter().sum::<u64>());
    }
}

// ---- SSSP / BFS ------------------------------------------------------------------

#[test]
fn sssp_weighted_matches_dijkstra() {
    let t = road(14, 14, 99);
    let coll = Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: 1,
            seed: 5,
            ..Default::default()
        },
    ));
    let lat = coll
        .get(0)
        .unwrap()
        .edge_f64(LATENCY_ATTR)
        .unwrap()
        .to_vec();
    let expect = ref_sssp(&t, Some(&lat), VertexIdx(7));
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let pg = partitioned(&t, 4);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        Sssp::factory(VertexIdx(7), Some(lat_col)),
        JobConfig::independent(1),
    );
    let mut got = vec![f64::INFINITY; t.num_vertices()];
    for e in &result.emitted {
        got[e.vertex.idx()] = e.value;
    }
    for v in 0..t.num_vertices() {
        assert!(
            (got[v] - expect[v]).abs() < 1e-9,
            "vertex {v}: {} vs {}",
            got[v],
            expect[v]
        );
    }
}

#[test]
fn sssp_unweighted_is_bfs() {
    let t = road(10, 10, 4);
    let coll = Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: 1,
            ..Default::default()
        },
    ));
    let expect = ref_sssp(&t, None, VertexIdx(0));
    let pg = partitioned(&t, 3);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        Sssp::factory(VertexIdx(0), None),
        JobConfig::independent(1),
    );
    for e in &result.emitted {
        assert_eq!(
            e.value,
            expect[e.vertex.idx()],
            "hop count at {:?}",
            e.vertex
        );
    }
    assert_eq!(result.emitted.len(), t.num_vertices());
}

// ---- WCC -------------------------------------------------------------------------

#[test]
fn wcc_labels_components_correctly() {
    // Two disjoint road networks glued into one template.
    let mut b = tempograph_core::TemplateBuilder::new("two-comps", false);
    b.vertex_schema()
        .add(TWEETS_ATTR, tempograph_core::AttrType::TextList);
    b.edge_schema()
        .add(LATENCY_ATTR, tempograph_core::AttrType::Double);
    for i in 0..40 {
        b.add_vertex(i);
    }
    let mut eid = 0;
    for i in 0..19u64 {
        b.add_edge(eid, i, i + 1).unwrap();
        eid += 1;
    }
    for i in 20..39u64 {
        b.add_edge(eid, i, i + 1).unwrap();
        eid += 1;
    }
    let t = Arc::new(b.finalize().unwrap());
    let mut coll = tempograph_core::TimeSeriesCollection::new(t.clone(), 0, 1);
    coll.push(coll.new_instance()).unwrap();

    let pg = partitioned(&t, 3);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(Arc::new(coll)),
        Wcc::factory(),
        JobConfig::independent(1),
    );
    let labels: HashMap<VertexIdx, u64> = result
        .emitted
        .iter()
        .map(|e| (e.vertex, e.value as u64))
        .collect();
    assert_eq!(labels.len(), 40);
    // Component 1: vertices 0..20 labelled 0; component 2: 20..40 labelled 20.
    for v in 0..20u32 {
        assert_eq!(labels[&VertexIdx(v)], 0);
    }
    for v in 20..40u32 {
        assert_eq!(labels[&VertexIdx(v)], 20);
    }
}

// ---- PageRank -----------------------------------------------------------------------

#[test]
fn pagerank_matches_power_iteration() {
    let t = road(8, 8, 77);
    let mut coll = tempograph_core::TimeSeriesCollection::new(t.clone(), 0, 1);
    coll.push(coll.new_instance()).unwrap();

    // Reference power iteration over the symmetric structure.
    let n = t.num_vertices();
    let adj = sym_adj(&t);
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..10 {
        let mut next = vec![0.15 / n as f64; n];
        for u in 0..n {
            let deg = adj[u].len();
            if deg == 0 {
                continue;
            }
            let share = 0.85 * rank[u] / deg as f64;
            for &(v, _) in &adj[u] {
                next[v as usize] += share;
            }
        }
        rank = next;
    }

    for k in [1, 4] {
        let pg = partitioned(&t, k);
        let result = run_job(
            &pg,
            &InstanceSource::Memory(Arc::new(coll.clone())),
            PageRank::factory(10),
            JobConfig::independent(1),
        );
        for e in &result.emitted {
            let expect = rank[e.vertex.idx()];
            assert!(
                (e.value - expect).abs() < 1e-12,
                "k={k} vertex {:?}: {} vs {}",
                e.vertex,
                e.value,
                expect
            );
        }
        assert_eq!(result.emitted.len(), n);
    }
}

// ---- TopN -------------------------------------------------------------------------------

#[test]
fn topn_reports_most_active_vertices() {
    let t = road(10, 10, 21);
    let coll = Arc::new(generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: 8,
            hit_prob: 0.5,
            initial_infected: 3,
            background_rate: 0.2,
            ..Default::default()
        },
    ));
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let pg = partitioned(&t, 2);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll.clone()),
        TopNActivity::factory(3, tweets_col),
        JobConfig::independent(8),
    );
    // Counters must equal the raw tweet totals per timestep.
    for s in 0..8 {
        let tweets = coll.get(s).unwrap().vertex_text_list(TWEETS_ATTR).unwrap();
        let total: u64 = tweets.iter().map(|r| r.len() as u64).sum();
        assert_eq!(result.counter_at(TopNActivity::TWEETS, s), total);
        // Per subgraph at most 3 emits per timestep; emitted values are
        // actual tweet counts.
        for e in result.emitted_at(s) {
            assert_eq!(e.value as usize, tweets[e.vertex.idx()].len());
        }
    }
}
