//! Determinism suite: TI-BSP runs must be **byte-identical** regardless of
//! execution configuration. The engine guarantees deterministic message
//! delivery (sorted by globally unique `(from, seq)`), so turning sender-side
//! combiners on or off, toggling intra-partition parallelism, or changing
//! the partition count must not change a single output bit of a
//! deterministic algorithm — only the traffic volume.
//!
//! The fingerprints compare `f64` *bit patterns* (not approximate values)
//! plus all user counters, so any nondeterminism in delivery order, combiner
//! folding, or emission ordering shows up as a hard failure.

use std::collections::BTreeMap;
use std::sync::Arc;
use tempograph_algos::{MemeDedupCombiner, MemeTracking, Tdsp, TdspCombiner};
use tempograph_core::{GraphTemplate, VertexIdx};
use tempograph_engine::{run_job, Combiner, InstanceSource, JobConfig, JobResult};
use tempograph_gen::{
    generate_road_latencies, generate_sir_tweets, road_network, RoadLatencyConfig, RoadNetConfig,
    SirConfig, LATENCY_ATTR, TWEETS_ATTR,
};
use tempograph_partition::{
    discover_subgraphs, MultilevelPartitioner, PartitionedGraph, Partitioner, Partitioning,
};

fn road(width: usize, height: usize, seed: u64) -> Arc<GraphTemplate> {
    Arc::new(road_network(&RoadNetConfig {
        width,
        height,
        seed,
        ..Default::default()
    }))
}

fn partitioned(t: &Arc<GraphTemplate>, k: usize) -> Arc<PartitionedGraph> {
    let p = MultilevelPartitioner::default().partition(t, k);
    Arc::new(discover_subgraphs(t.clone(), p))
}

/// Everything observable about a run, in canonical order, with floats as
/// bit patterns. Two fingerprints are equal iff the runs are byte-identical.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    emitted: Vec<(usize, u32, u64)>,
    counters: BTreeMap<String, Vec<u64>>,
    timesteps_run: usize,
}

fn fingerprint(r: &JobResult) -> Fingerprint {
    Fingerprint {
        emitted: r
            .emitted
            .iter()
            .map(|e| (e.timestep, e.vertex.0, e.value.to_bits()))
            .collect(),
        counters: r
            .counters
            .iter()
            .map(|(name, per_t)| {
                (
                    name.clone(),
                    per_t.iter().map(|per_p| per_p.iter().sum()).collect(),
                )
            })
            .collect(),
        timesteps_run: r.timesteps_run,
    }
}

/// Sum a `TimestepMetrics` field over all timesteps, partitions, and merge.
fn total_metric(r: &JobResult, f: impl Fn(&tempograph_engine::TimestepMetrics) -> u64) -> u64 {
    r.metrics
        .iter()
        .flatten()
        .chain(r.merge_metrics.iter())
        .map(f)
        .sum()
}

fn tdsp_config(combiner: bool, parallel: bool) -> JobConfig<tempograph_algos::tdsp::TdspMsg> {
    let mut cfg = JobConfig::sequentially_dependent(20).while_active(20);
    if combiner {
        cfg = cfg.with_combiner(Arc::new(TdspCombiner));
    }
    if parallel {
        cfg = cfg.with_intra_partition_parallelism();
    }
    cfg
}

#[test]
fn tdsp_byte_identical_across_combiner_parallelism_and_partitions() {
    let t = road(10, 10, 0xD15EA5E);
    let coll = Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: 20,
            period: 50,
            min_latency: 4.0,
            max_latency: 60.0,
            seed: 13,
            ..Default::default()
        },
    ));
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let source = InstanceSource::Memory(coll);

    let mut baseline: Option<Fingerprint> = None;
    for k in [3, 6, 9] {
        let pg = partitioned(&t, k);
        for combiner in [false, true] {
            for parallel in [false, true] {
                let result = run_job(
                    &pg,
                    &source,
                    Tdsp::factory(VertexIdx(0), lat_col),
                    tdsp_config(combiner, parallel),
                );
                let fp = fingerprint(&result);
                match &baseline {
                    None => baseline = Some(fp),
                    Some(b) => assert_eq!(
                        &fp, b,
                        "TDSP diverged at k={k} combiner={combiner} parallel={parallel}"
                    ),
                }
            }
        }
    }
}

#[test]
fn meme_byte_identical_across_combiner_parallelism_and_partitions() {
    let t = road(12, 12, 0xFACADE);
    let cfg = SirConfig {
        timesteps: 15,
        hit_prob: 0.4,
        initial_infected: 4,
        infectious_steps: 3,
        background_rate: 0.08,
        ..Default::default()
    };
    let coll = Arc::new(generate_sir_tweets(t.clone(), &cfg));
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let source = InstanceSource::Memory(coll);

    let mut baseline: Option<Fingerprint> = None;
    for k in [3, 6, 9] {
        let pg = partitioned(&t, k);
        for combiner in [false, true] {
            for parallel in [false, true] {
                let mut job = JobConfig::sequentially_dependent(15);
                if combiner {
                    job = job.with_combiner(Arc::new(MemeDedupCombiner));
                }
                if parallel {
                    job = job.with_intra_partition_parallelism();
                }
                let result = run_job(
                    &pg,
                    &source,
                    MemeTracking::factory(cfg.meme.clone(), tweets_col),
                    job,
                );
                let fp = fingerprint(&result);
                match &baseline {
                    None => baseline = Some(fp),
                    Some(b) => assert_eq!(
                        &fp, b,
                        "MEME diverged at k={k} combiner={combiner} parallel={parallel}"
                    ),
                }
            }
        }
    }
}

/// The combiner must *reduce traffic*, not just preserve results. A
/// checkerboard partitioning makes every vertex its own subgraph with all
/// neighbours in the opposite partition, so several subgraphs of one
/// partition relax the same remote vertex in the same superstep — exactly
/// the duplication sender-side combining exists to collapse.
#[test]
fn tdsp_combiner_sends_fewer_wire_bytes_and_identical_results() {
    let t = road(8, 8, 42);
    let coll = Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: 12,
            period: 45,
            min_latency: 3.0,
            max_latency: 50.0,
            seed: 3,
            ..Default::default()
        },
    ));
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let source = InstanceSource::Memory(coll);

    // Checkerboard by grid parity: all grid neighbours cross partitions.
    let width = 8;
    let assignment: Vec<u16> = (0..t.num_vertices())
        .map(|v| ((v % width + v / width) % 2) as u16)
        .collect();
    let pg = Arc::new(discover_subgraphs(
        t.clone(),
        Partitioning { assignment, k: 2 },
    ));
    assert!(
        pg.subgraphs().len() > 2,
        "checkerboard must fragment partitions into many subgraphs"
    );

    let run = |combine: bool| {
        let mut job = JobConfig::sequentially_dependent(12).while_active(12);
        if combine {
            job = job.with_combiner(Arc::new(TdspCombiner));
        }
        run_job(&pg, &source, Tdsp::factory(VertexIdx(0), lat_col), job)
    };
    let plain = run(false);
    let combined = run(true);

    // Results byte-identical…
    assert_eq!(fingerprint(&plain), fingerprint(&combined));

    // …but the combined run did real work and shipped strictly fewer bytes.
    let plain_bytes = total_metric(&plain, |m| m.bytes_remote);
    let combined_bytes = total_metric(&combined, |m| m.bytes_remote);
    let folded = total_metric(&combined, |m| m.msgs_combined);
    assert_eq!(total_metric(&plain, |m| m.msgs_combined), 0);
    assert!(folded > 0, "combiner never fired — topology too tame");
    assert!(
        combined_bytes < plain_bytes,
        "combined run must ship fewer bytes: {combined_bytes} vs {plain_bytes}"
    );

    // Batched framing invariant: every remote frame belongs to a
    // (src, dst, phase) tuple — far fewer frames than messages.
    let frames = total_metric(&combined, |m| m.batches_remote);
    let remote_msgs = total_metric(&combined, |m| m.msgs_remote);
    assert!(frames > 0);
    assert!(frames <= remote_msgs, "one frame carries ≥1 message");
}

/// Combiners must also leave the *never-combine* traffic intact: `Continue`
/// liveness tokens have `key() == None` and must all survive, or WhileActive
/// termination would mis-fire. (Covered implicitly by the byte-identical
/// tests; this asserts the key contract directly.)
#[test]
fn tdsp_combiner_key_contract() {
    use tempograph_algos::tdsp::TdspMsg;
    let c = TdspCombiner;
    assert_eq!(c.key(&TdspMsg::Relax(VertexIdx(7), 1.0)), Some(7));
    assert_eq!(c.key(&TdspMsg::Continue), None);
    let mut acc = TdspMsg::Relax(VertexIdx(7), 5.0);
    c.combine(&mut acc, TdspMsg::Relax(VertexIdx(7), 3.0));
    assert_eq!(acc, TdspMsg::Relax(VertexIdx(7), 3.0));
    c.combine(&mut acc, TdspMsg::Relax(VertexIdx(7), 9.0));
    assert_eq!(acc, TdspMsg::Relax(VertexIdx(7), 3.0));
}
