//! Correctness tests for the extension algorithms: temporal reachability
//! (isExists), community evolution, and instance statistics.

use std::collections::HashMap;
use std::sync::Arc;
use tempograph_algos::{CommunityEvolution, InstanceStats, TemporalReachability};
use tempograph_core::{GraphTemplate, TimeSeriesCollection, VertexIdx};
use tempograph_engine::{run_job, InstanceSource, JobConfig};
use tempograph_gen::{
    generate_sir_tweets, generate_topology_churn, road_network, ChurnConfig, RoadNetConfig,
    SirConfig, TWEETS_ATTR,
};
use tempograph_partition::{discover_subgraphs, MultilevelPartitioner, Partitioner};

fn road_with_exists(side: usize, seed: u64) -> Arc<GraphTemplate> {
    // road_network declares latency+tweets; rebuild with isExists too.
    let base = road_network(&RoadNetConfig {
        width: side,
        height: side,
        seed,
        ..Default::default()
    });
    let mut b = tempograph_core::TemplateBuilder::new("churny-road", false);
    b.vertex_schema()
        .add(GraphTemplate::IS_EXISTS, tempograph_core::AttrType::Bool);
    for v in base.vertices() {
        b.add_vertex(base.vertex_id(v));
    }
    for e in base.edges() {
        let (s, d) = base.endpoints(e);
        b.add_edge(base.edge_id(e), base.vertex_id(s), base.vertex_id(d))
            .unwrap();
    }
    Arc::new(b.finalize().unwrap())
}

/// Single-threaded reference for temporal reachability.
fn ref_reachability(coll: &TimeSeriesCollection, source: VertexIdx) -> HashMap<VertexIdx, usize> {
    let t = coll.template();
    let mut adj = vec![Vec::new(); t.num_vertices()];
    for e in t.edges() {
        let (s, d) = t.endpoints(e);
        adj[s.idx()].push(d);
        adj[d.idx()].push(s);
    }
    let mut reached_at: HashMap<VertexIdx, usize> = HashMap::new();
    for step in 0..coll.len() {
        let exists = coll
            .get(step)
            .unwrap()
            .vertex_bool(GraphTemplate::IS_EXISTS)
            .unwrap();
        if step == 0 && exists[source.idx()] {
            reached_at.insert(source, 0);
        }
        let mut stack: Vec<VertexIdx> = reached_at.keys().copied().collect();
        while let Some(u) = stack.pop() {
            if !exists[u.idx()] {
                continue;
            }
            for &v in &adj[u.idx()] {
                if exists[v.idx()] && !reached_at.contains_key(&v) {
                    reached_at.insert(v, step);
                    stack.push(v);
                }
            }
        }
    }
    reached_at
}

#[test]
fn temporal_reachability_matches_reference() {
    let t = road_with_exists(12, 9);
    let source = VertexIdx(0);
    let coll = Arc::new(generate_topology_churn(
        t.clone(),
        &ChurnConfig {
            timesteps: 20,
            flip_prob: 0.05,
            initial_alive: 0.7,
            pinned_alive: vec![source],
            seed: 13,
            ..Default::default()
        },
    ));
    let exists_col = t
        .vertex_schema()
        .index_of(GraphTemplate::IS_EXISTS)
        .unwrap();
    let expect = ref_reachability(&coll, source);

    for k in [1usize, 3] {
        let part = MultilevelPartitioner::default().partition(&t, k);
        let pg = Arc::new(discover_subgraphs(t.clone(), part));
        let result = run_job(
            &pg,
            &InstanceSource::Memory(coll.clone()),
            TemporalReachability::factory(source, exists_col),
            JobConfig::sequentially_dependent(20).while_active(20),
        );
        let got: HashMap<VertexIdx, usize> = result
            .emitted
            .iter()
            .map(|e| (e.vertex, e.value as usize))
            .collect();
        assert_eq!(got.len(), expect.len(), "k={k} reach set size");
        for (v, &step) in &expect {
            assert_eq!(got.get(v), Some(&step), "k={k} vertex {v:?}");
        }
    }
}

#[test]
fn temporal_reachability_respects_dead_vertices() {
    let t = road_with_exists(6, 2);
    // Nothing exists at all: nothing is ever reached.
    let coll = Arc::new(generate_topology_churn(
        t.clone(),
        &ChurnConfig {
            timesteps: 5,
            flip_prob: 0.0,
            initial_alive: 0.0,
            ..Default::default()
        },
    ));
    let exists_col = t
        .vertex_schema()
        .index_of(GraphTemplate::IS_EXISTS)
        .unwrap();
    let part = MultilevelPartitioner::default().partition(&t, 2);
    let pg = Arc::new(discover_subgraphs(t.clone(), part));
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        TemporalReachability::factory(VertexIdx(0), exists_col),
        JobConfig::sequentially_dependent(5).while_active(5),
    );
    assert!(result.emitted.is_empty());
}

/// Reference community stability: connected components over active vertices
/// per timestep (labels = min active id), count vertices active in t-1 and
/// t with identical labels.
fn ref_community_stability(coll: &TimeSeriesCollection) -> Vec<u64> {
    let t = coll.template();
    let n = t.num_vertices();
    let mut adj = vec![Vec::new(); n];
    for e in t.edges() {
        let (s, d) = t.endpoints(e);
        adj[s.idx()].push(d.0);
        adj[d.idx()].push(s.0);
    }
    let labels_at = |step: usize| -> Vec<u64> {
        let tweets = coll
            .get(step)
            .unwrap()
            .vertex_text_list(TWEETS_ATTR)
            .unwrap();
        let active: Vec<bool> = tweets.iter().map(|r| !r.is_empty()).collect();
        let mut label = vec![u64::MAX; n];
        for v in 0..n {
            if !active[v] || label[v] != u64::MAX {
                continue;
            }
            // BFS this active component, find min id, assign.
            let mut comp = vec![v as u32];
            let mut stack = vec![v as u32];
            let mut seen = std::collections::HashSet::from([v as u32]);
            while let Some(u) = stack.pop() {
                for &w in &adj[u as usize] {
                    if active[w as usize] && seen.insert(w) {
                        comp.push(w);
                        stack.push(w);
                    }
                }
            }
            let min_id = comp
                .iter()
                .map(|&x| t.vertex_id(VertexIdx(x)))
                .min()
                .unwrap();
            for &x in &comp {
                label[x as usize] = min_id;
            }
        }
        label
    };
    let mut prev = labels_at(0);
    let mut out = Vec::new();
    for step in 1..coll.len() {
        let cur = labels_at(step);
        out.push(
            cur.iter()
                .zip(&prev)
                .filter(|(a, b)| **a != u64::MAX && a == b)
                .count() as u64,
        );
        prev = cur;
    }
    out
}

#[test]
fn community_evolution_matches_reference() {
    let t = Arc::new(road_network(&RoadNetConfig {
        width: 12,
        height: 12,
        seed: 31,
        ..Default::default()
    }));
    let coll = Arc::new(generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: 12,
            hit_prob: 0.35,
            initial_infected: 6,
            infectious_steps: 3,
            background_rate: 0.05,
            ..Default::default()
        },
    ));
    let expect = ref_community_stability(&coll);
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();

    for k in [1usize, 3] {
        let part = MultilevelPartitioner::default().partition(&t, k);
        let pg = Arc::new(discover_subgraphs(t.clone(), part));
        let result = run_job(
            &pg,
            &InstanceSource::Memory(coll.clone()),
            CommunityEvolution::factory(tweets_col),
            JobConfig::eventually_dependent(12),
        );
        let mut got = vec![0u64; 11];
        for e in &result.emitted {
            got[e.vertex.idx()] = e.value as u64;
        }
        assert_eq!(got, expect, "k = {k}");
    }
}

#[test]
fn instance_stats_counts_are_exact() {
    let t = Arc::new(road_network(&RoadNetConfig {
        width: 10,
        height: 10,
        seed: 8,
        ..Default::default()
    }));
    let coll = Arc::new(generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: 8,
            hit_prob: 0.3,
            initial_infected: 4,
            background_rate: 0.1,
            ..Default::default()
        },
    ));
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let part = MultilevelPartitioner::default().partition(&t, 3);
    let pg = Arc::new(discover_subgraphs(t.clone(), part));
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll.clone()),
        InstanceStats::factory(Some(tweets_col), None, 0.0),
        JobConfig::independent(8),
    );
    for s in 0..8 {
        let tweets = coll.get(s).unwrap().vertex_text_list(TWEETS_ATTR).unwrap();
        let active = tweets.iter().filter(|r| !r.is_empty()).count() as u64;
        let volume: u64 = tweets.iter().map(|r| r.len() as u64).sum();
        assert_eq!(result.counter_at(InstanceStats::ACTIVE_VERTICES, s), active);
        assert_eq!(result.counter_at(InstanceStats::TWEETS, s), volume);
    }
}
