//! # tempograph-partition — graph partitioning & subgraph discovery
//!
//! The paper partitions each template with METIS ("default configuration for
//! a k-way partitioning with a load factor of 1.03, minimizing edge cuts",
//! §IV) and then discovers **subgraphs** — maximal weakly-connected
//! components over *local* (intra-partition) edges — which are the unit of
//! computation in GoFFish's subgraph-centric model (§II.C).
//!
//! This crate provides, from scratch:
//!
//! * [`MultilevelPartitioner`] — a METIS-like multilevel k-way partitioner:
//!   heavy-edge-matching coarsening → greedy region-growing initial
//!   partitioning → projected boundary refinement under a 1.03 load factor;
//! * [`LdgPartitioner`] — Linear Deterministic Greedy streaming partitioning
//!   (used in ablation A3);
//! * [`HashPartitioner`] — the classic Pregel-style baseline;
//! * [`discover_subgraphs`] — union-find WCC over local edges, producing the
//!   [`PartitionedGraph`] the engine executes on, with per-subgraph local
//!   CSR adjacency and remote-edge tables;
//! * [`quality`] — edge-cut and balance metrics (reproduces the paper's
//!   edge-cut table).

#![forbid(unsafe_code)]

pub mod hash;
pub mod ldg;
pub mod multilevel;
pub mod quality;
pub mod rebalance;
pub mod subgraphs;

pub use hash::HashPartitioner;
pub use ldg::LdgPartitioner;
pub use multilevel::{MultilevelConfig, MultilevelPartitioner};
pub use quality::{balance, cut_fraction, edge_cut};
pub use rebalance::{
    suggest_rebalance, suggest_rebalance_from, CostSource, Move, RebalanceError, RebalancePlan,
};
pub use subgraphs::{discover_subgraphs, PartitionedGraph, RemoteNeighbor, Subgraph, SubgraphId};

use tempograph_core::GraphTemplate;

/// A vertex→partition assignment for `k` partitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    /// Partition of each vertex, indexed by dense vertex index.
    pub assignment: Vec<u16>,
    /// Number of partitions.
    pub k: usize,
}

impl Partitioning {
    /// Validate that every assignment is `< k` and the length matches the
    /// template.
    pub fn validate(&self, template: &GraphTemplate) -> Result<(), String> {
        if self.assignment.len() != template.num_vertices() {
            return Err(format!(
                "assignment length {} != vertex count {}",
                self.assignment.len(),
                template.num_vertices()
            ));
        }
        if let Some(bad) = self.assignment.iter().find(|&&p| p as usize >= self.k) {
            return Err(format!("partition {bad} out of range (k = {})", self.k));
        }
        Ok(())
    }

    /// Vertex count per partition.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }
}

/// Common interface over the partitioners.
pub trait Partitioner {
    /// Partition `template` into `k` parts.
    fn partition(&self, template: &GraphTemplate, k: usize) -> Partitioning;
    /// Short name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::TemplateBuilder;

    fn tiny() -> GraphTemplate {
        let mut b = TemplateBuilder::new("t", false);
        for i in 0..4 {
            b.add_vertex(i);
        }
        b.add_edge(0, 0, 1).unwrap();
        b.finalize().unwrap()
    }

    #[test]
    fn validate_checks_length_and_range() {
        let t = tiny();
        let ok = Partitioning {
            assignment: vec![0, 1, 0, 1],
            k: 2,
        };
        ok.validate(&t).unwrap();
        let short = Partitioning {
            assignment: vec![0, 1],
            k: 2,
        };
        assert!(short.validate(&t).is_err());
        let out_of_range = Partitioning {
            assignment: vec![0, 1, 2, 0],
            k: 2,
        };
        assert!(out_of_range.validate(&t).is_err());
    }

    #[test]
    fn sizes_counts_per_partition() {
        let p = Partitioning {
            assignment: vec![0, 1, 0, 1, 1],
            k: 3,
        };
        assert_eq!(p.sizes(), vec![2, 3, 0]);
    }
}
