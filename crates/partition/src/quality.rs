//! Partitioning quality metrics: edge cut and load balance.

use crate::Partitioning;
use tempograph_core::GraphTemplate;

/// Number of edges whose endpoints land in different partitions.
pub fn edge_cut(template: &GraphTemplate, p: &Partitioning) -> usize {
    template
        .edges()
        .filter(|&e| {
            let (s, d) = template.endpoints(e);
            p.assignment[s.idx()] != p.assignment[d.idx()]
        })
        .count()
}

/// Fraction of edges cut, in `[0, 1]`. This is the paper's
/// "percentage of edges that are cut across graph partitions" table.
pub fn cut_fraction(template: &GraphTemplate, p: &Partitioning) -> f64 {
    if template.num_edges() == 0 {
        return 0.0;
    }
    edge_cut(template, p) as f64 / template.num_edges() as f64
}

/// Load balance: `max partition size / ideal size`. METIS's default load
/// factor constraint is 1.03; a perfectly balanced partitioning returns 1.0.
pub fn balance(template: &GraphTemplate, p: &Partitioning) -> f64 {
    let sizes = p.sizes();
    let max = *sizes.iter().max().unwrap_or(&0) as f64;
    let ideal = template.num_vertices() as f64 / p.k as f64;
    if ideal == 0.0 {
        return 1.0;
    }
    max / ideal
}

/// Export the quality metrics of a partitioning into a registry, labeled
/// with the partition count `k`: `tempograph_partition_edge_cut` (counter),
/// `tempograph_partition_cut_fraction` and `tempograph_partition_balance`
/// (gauges).
pub fn export_metrics(
    template: &GraphTemplate,
    p: &Partitioning,
    reg: &mut tempograph_metrics::Registry,
) {
    let k = p.k.to_string();
    let labels: [(&str, &str); 1] = [("k", k.as_str())];
    reg.counter_add(
        "tempograph_partition_edge_cut",
        &labels,
        edge_cut(template, p) as u64,
    );
    reg.gauge_set(
        "tempograph_partition_cut_fraction",
        &labels,
        cut_fraction(template, p),
    );
    reg.gauge_set(
        "tempograph_partition_balance",
        &labels,
        balance(template, p),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::TemplateBuilder;

    fn square() -> GraphTemplate {
        // 0-1, 1-2, 2-3, 3-0 cycle
        let mut b = TemplateBuilder::new("sq", false);
        for i in 0..4 {
            b.add_vertex(i);
        }
        for i in 0..4u64 {
            b.add_edge(i, i, (i + 1) % 4).unwrap();
        }
        b.finalize().unwrap()
    }

    #[test]
    fn cut_of_opposite_halves() {
        let t = square();
        // {0,1} vs {2,3}: edges 1-2 and 3-0 are cut.
        let p = Partitioning {
            assignment: vec![0, 0, 1, 1],
            k: 2,
        };
        assert_eq!(edge_cut(&t, &p), 2);
        assert!((cut_fraction(&t, &p) - 0.5).abs() < 1e-12);
        assert!((balance(&t, &p) - 1.0).abs() < 1e-12);

        let mut reg = tempograph_metrics::Registry::new();
        export_metrics(&t, &p, &mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("tempograph_partition_edge_cut"), 2);
        let text = snap.to_prometheus();
        assert!(text.contains("tempograph_partition_cut_fraction{k=\"2\"} 0.5"));
        assert!(text.contains("tempograph_partition_balance{k=\"2\"} 1.0"));
    }

    #[test]
    fn cut_of_single_partition_is_zero() {
        let t = square();
        let p = Partitioning {
            assignment: vec![0; 4],
            k: 1,
        };
        assert_eq!(edge_cut(&t, &p), 0);
        assert_eq!(cut_fraction(&t, &p), 0.0);
    }

    #[test]
    fn imbalance_detected() {
        let t = square();
        let p = Partitioning {
            assignment: vec![0, 0, 0, 1],
            k: 2,
        };
        assert!((balance(&t, &p) - 1.5).abs() < 1e-12); // 3 / 2
    }

    #[test]
    fn empty_graph_edge_cases() {
        let t = TemplateBuilder::new("e", false).finalize().unwrap();
        let p = Partitioning {
            assignment: vec![],
            k: 2,
        };
        assert_eq!(cut_fraction(&t, &p), 0.0);
        assert_eq!(balance(&t, &p), 1.0);
    }
}
