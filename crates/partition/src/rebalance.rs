//! Subgraph rebalancing — the paper's §IV.D research direction.
//!
//! *"Partitions which are active at a given timestep can pass some of their
//! subgraphs to an idle partition if the potential improvements in average
//! CPU utilization outweighs the cost of rebalancing. … partitioning
//! produces a long tail of small subgraphs in each partition and one large
//! subgraph dominates. So these small subgraphs could be candidates for
//! moving."*
//!
//! This module implements that proposal as an offline analyzer: given the
//! measured per-partition compute cost of a finished run, it greedily moves
//! *small* subgraphs (never each partition's dominant one) from overloaded
//! to underloaded partitions, attributing cost to a subgraph proportionally
//! to its vertex count, and predicts the makespan improvement. The ablation
//! bench applies the plan and re-runs to check the prediction.

use crate::{PartitionedGraph, Partitioning, SubgraphId};
use std::fmt;

/// A rebalance plan referenced something the graph doesn't have. Returned
/// by [`RebalancePlan::apply`] instead of silently producing a corrupt
/// assignment (plans may come from stale ledger records whose partition
/// count no longer matches the dataset).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RebalanceError {
    /// A move targets a partition index ≥ the partitioning's `k`.
    PartitionOutOfRange {
        /// The subgraph the offending move relocates.
        subgraph: SubgraphId,
        /// The out-of-range target partition.
        to: u16,
        /// The partition count the graph actually has.
        k: usize,
    },
    /// A move names a subgraph index the graph doesn't contain.
    UnknownSubgraph {
        /// The unknown subgraph id.
        subgraph: SubgraphId,
        /// How many subgraphs the graph actually has.
        count: usize,
    },
}

impl fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebalanceError::PartitionOutOfRange { subgraph, to, k } => write!(
                f,
                "move of subgraph {} targets partition {to} but only {k} partitions exist",
                subgraph.0
            ),
            RebalanceError::UnknownSubgraph { subgraph, count } => write!(
                f,
                "move names subgraph {} but only {count} subgraphs exist",
                subgraph.0
            ),
        }
    }
}

impl std::error::Error for RebalanceError {}

/// One proposed move.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Move {
    /// Subgraph to relocate.
    pub subgraph: SubgraphId,
    /// Current partition.
    pub from: u16,
    /// Proposed partition.
    pub to: u16,
    /// Estimated cost (ns) this move shifts.
    pub est_cost: u64,
}

/// A rebalancing proposal.
#[derive(Clone, Debug, Default)]
pub struct RebalancePlan {
    /// Moves, in application order.
    pub moves: Vec<Move>,
    /// Makespan (max per-partition cost) before, in the cost model's unit.
    pub makespan_before: u64,
    /// Predicted makespan after applying all moves.
    pub makespan_after: u64,
}

impl RebalancePlan {
    /// Predicted speedup factor.
    pub fn predicted_speedup(&self) -> f64 {
        if self.makespan_after == 0 {
            return 1.0;
        }
        self.makespan_before as f64 / self.makespan_after as f64
    }

    /// Apply the plan to a partitioning, producing the new vertex→partition
    /// assignment (subgraph members move wholesale).
    ///
    /// Every move is validated against the graph before any is applied, so
    /// an `Err` leaves no partial state behind.
    pub fn apply(&self, pg: &PartitionedGraph) -> Result<Partitioning, RebalanceError> {
        let k = pg.partitioning().k;
        let count = pg.subgraphs().len();
        for mv in &self.moves {
            if mv.subgraph.idx() >= count {
                return Err(RebalanceError::UnknownSubgraph {
                    subgraph: mv.subgraph,
                    count,
                });
            }
            if usize::from(mv.to) >= k {
                return Err(RebalanceError::PartitionOutOfRange {
                    subgraph: mv.subgraph,
                    to: mv.to,
                    k,
                });
            }
        }
        let mut assignment = pg.partitioning().assignment.clone();
        for mv in &self.moves {
            for &v in pg.subgraph(mv.subgraph).vertices() {
                assignment[v.idx()] = mv.to;
            }
        }
        Ok(Partitioning { assignment, k })
    }
}

/// Where [`suggest_rebalance_from`] gets its per-subgraph cost estimates.
#[derive(Clone, Copy, Debug)]
pub enum CostSource<'a> {
    /// Measured per-partition totals (e.g. compute nanoseconds from a
    /// run's metrics), split across each partition's subgraphs
    /// proportionally to vertex count — the best estimate available
    /// without per-subgraph instrumentation.
    PartitionProportional(&'a [u64]),
    /// Measured per-subgraph totals as `(subgraph, cost)` pairs — e.g. the
    /// run ledger's compute attribution table
    /// (`CostAttribution::per_subgraph_ns` in `tempograph-engine`).
    /// Subgraphs absent from the list cost 0; duplicate ids are summed.
    MeasuredPerSubgraph(&'a [(SubgraphId, u64)]),
}

/// Propose up to `max_moves` subgraph relocations given measured
/// per-partition costs (e.g. compute nanoseconds from a run's metrics).
///
/// Cost attribution: a partition's measured cost is split across its
/// subgraphs proportionally to vertex count — the best estimate available
/// without per-subgraph instrumentation, and conservative because the
/// dominant subgraph (which the paper says should *not* move) absorbs most
/// of the cost and is excluded from candidacy.
pub fn suggest_rebalance(
    pg: &PartitionedGraph,
    per_partition_cost: &[u64],
    max_moves: usize,
) -> RebalancePlan {
    suggest_rebalance_from(
        pg,
        CostSource::PartitionProportional(per_partition_cost),
        max_moves,
    )
}

/// Propose up to `max_moves` subgraph relocations from an explicit cost
/// source (see [`CostSource`]).
///
/// With [`CostSource::MeasuredPerSubgraph`] the greedy analysis operates
/// on *measured* costs: a partition's load is the sum of its subgraphs'
/// measured costs, and the excluded dominant subgraph is the costliest one
/// rather than the largest — closing the loop the paper's §IV.D sketches
/// (move decisions driven by observed activity, not topology proxies).
pub fn suggest_rebalance_from(
    pg: &PartitionedGraph,
    costs: CostSource<'_>,
    max_moves: usize,
) -> RebalancePlan {
    let k = pg.num_partitions();
    let n_sg = pg.subgraphs().len();
    let mut sg_cost: Vec<u64> = vec![0; n_sg];
    let mut dominant: Vec<Option<SubgraphId>> = vec![None; k];
    let mut load: Vec<u64> = vec![0; k];
    match costs {
        CostSource::PartitionProportional(per_partition_cost) => {
            assert_eq!(per_partition_cost.len(), k, "one cost per partition");
            load.copy_from_slice(per_partition_cost);
            for p in 0..k as u16 {
                let ids = pg.subgraphs_of_partition(p);
                let total_vertices: usize =
                    ids.iter().map(|&id| pg.subgraph(id).num_vertices()).sum();
                if total_vertices == 0 {
                    continue;
                }
                for &id in ids {
                    let share = pg.subgraph(id).num_vertices() as u128;
                    sg_cost[id.idx()] = ((per_partition_cost[p as usize] as u128 * share)
                        / total_vertices as u128) as u64;
                }
                dominant[p as usize] = ids
                    .iter()
                    .copied()
                    .max_by_key(|&id| pg.subgraph(id).num_vertices());
            }
        }
        CostSource::MeasuredPerSubgraph(pairs) => {
            for &(id, cost) in pairs {
                assert!(
                    id.idx() < n_sg,
                    "measured cost names subgraph {} but only {n_sg} exist",
                    id.0
                );
                sg_cost[id.idx()] += cost;
            }
            for p in 0..k as u16 {
                let ids = pg.subgraphs_of_partition(p);
                load[p as usize] = ids.iter().map(|&id| sg_cost[id.idx()]).sum();
                // Costliest subgraph stays put; vertex count breaks ties so
                // the choice is deterministic under equal measurements.
                dominant[p as usize] = ids
                    .iter()
                    .copied()
                    .max_by_key(|&id| (sg_cost[id.idx()], pg.subgraph(id).num_vertices()));
            }
        }
    }
    let makespan_before = load.iter().copied().max().unwrap_or(0);

    let mut moved: Vec<bool> = vec![false; n_sg];
    let mut moves = Vec::new();
    for _ in 0..max_moves {
        let busiest = (0..k).max_by_key(|&p| load[p]).expect("k ≥ 1") as u16;
        let idlest = (0..k).min_by_key(|&p| load[p]).expect("k ≥ 1") as u16;
        if busiest == idlest {
            break;
        }
        let gap = load[busiest as usize] - load[idlest as usize];
        // Best candidate: the movable subgraph whose cost is closest to
        // half the gap (moving more than the gap inverts the imbalance).
        let candidate = pg
            .subgraphs_of_partition(busiest)
            .iter()
            .copied()
            .filter(|&id| Some(id) != dominant[busiest as usize] && !moved[id.idx()])
            .filter(|&id| sg_cost[id.idx()] > 0 && sg_cost[id.idx()] < gap)
            .min_by_key(|&id| (gap / 2).abs_diff(sg_cost[id.idx()]));
        let Some(id) = candidate else { break };
        let cost = sg_cost[id.idx()];
        load[busiest as usize] -= cost;
        load[idlest as usize] += cost;
        moved[id.idx()] = true;
        moves.push(Move {
            subgraph: id,
            from: busiest,
            to: idlest,
            est_cost: cost,
        });
    }

    RebalancePlan {
        moves,
        makespan_before,
        makespan_after: load.into_iter().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover_subgraphs;
    use std::sync::Arc;
    use tempograph_core::TemplateBuilder;

    /// Partition 0: one big subgraph (8 vertices) + two small (2 each);
    /// partition 1: one small subgraph (2 vertices).
    fn fixture() -> PartitionedGraph {
        let mut b = TemplateBuilder::new("rb", false);
        for i in 0..14 {
            b.add_vertex(i);
        }
        let mut eid = 0;
        // big component 0..8 in partition 0
        for i in 0..7u64 {
            b.add_edge(eid, i, i + 1).unwrap();
            eid += 1;
        }
        // small components {8,9} and {10,11} in partition 0
        b.add_edge(eid, 8, 9).unwrap();
        eid += 1;
        b.add_edge(eid, 10, 11).unwrap();
        eid += 1;
        // small component {12,13} in partition 1
        b.add_edge(eid, 12, 13).unwrap();
        let t = Arc::new(b.finalize().unwrap());
        let mut assignment = vec![0u16; 14];
        assignment[12] = 1;
        assignment[13] = 1;
        discover_subgraphs(t, Partitioning { assignment, k: 2 })
    }

    #[test]
    fn moves_small_subgraphs_not_the_dominant_one() {
        let pg = fixture();
        // Partition 0 is 6× busier.
        let plan = suggest_rebalance(&pg, &[600, 100], 4);
        assert!(!plan.moves.is_empty());
        for mv in &plan.moves {
            assert_eq!(mv.from, 0);
            assert_eq!(mv.to, 1);
            // Never the 8-vertex dominant subgraph.
            assert!(pg.subgraph(mv.subgraph).num_vertices() <= 2);
        }
        assert!(plan.makespan_after < plan.makespan_before);
        assert!(plan.predicted_speedup() > 1.0);
    }

    #[test]
    fn apply_produces_valid_partitioning() {
        let pg = fixture();
        let plan = suggest_rebalance(&pg, &[600, 100], 4);
        let newp = plan.apply(&pg).unwrap();
        newp.validate(pg.template()).unwrap();
        // Moved subgraphs' vertices now live in the target partition.
        for mv in &plan.moves {
            for &v in pg.subgraph(mv.subgraph).vertices() {
                assert_eq!(newp.assignment[v.idx()], mv.to);
            }
        }
    }

    #[test]
    fn balanced_load_yields_empty_plan() {
        let pg = fixture();
        let plan = suggest_rebalance(&pg, &[100, 100], 4);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.predicted_speedup(), 1.0);
    }

    #[test]
    fn respects_max_moves() {
        let pg = fixture();
        let plan = suggest_rebalance(&pg, &[1000, 10], 1);
        assert!(plan.moves.len() <= 1);
    }

    #[test]
    fn apply_rejects_out_of_range_partition() {
        let pg = fixture();
        let plan = RebalancePlan {
            moves: vec![Move {
                subgraph: SubgraphId(0),
                from: 0,
                to: 7,
                est_cost: 1,
            }],
            ..Default::default()
        };
        match plan.apply(&pg) {
            Err(RebalanceError::PartitionOutOfRange { subgraph, to, k }) => {
                assert_eq!(subgraph, SubgraphId(0));
                assert_eq!(to, 7);
                assert_eq!(k, 2);
            }
            other => panic!("expected PartitionOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn apply_rejects_unknown_subgraph() {
        let pg = fixture();
        let n = pg.subgraphs().len();
        let plan = RebalancePlan {
            moves: vec![Move {
                subgraph: SubgraphId(n as u32),
                from: 0,
                to: 1,
                est_cost: 1,
            }],
            ..Default::default()
        };
        match plan.apply(&pg) {
            Err(RebalanceError::UnknownSubgraph { subgraph, count }) => {
                assert_eq!(subgraph, SubgraphId(n as u32));
                assert_eq!(count, n);
            }
            other => panic!("expected UnknownSubgraph, got {other:?}"),
        }
    }

    #[test]
    fn measured_costs_override_the_vertex_count_proxy() {
        let pg = fixture();
        // Under the proxy, the 8-vertex component dominates partition 0 and
        // may not move. Measured costs say otherwise: one *small* component
        // is the hot one, so the big component becomes movable and the hot
        // small one must stay.
        let hot_small = pg
            .subgraphs_of_partition(0)
            .iter()
            .copied()
            .find(|&id| pg.subgraph(id).num_vertices() == 2)
            .unwrap();
        let measured: Vec<(SubgraphId, u64)> = pg
            .subgraphs()
            .iter()
            .map(|sg| {
                let id = sg.id();
                let cost = if id == hot_small { 900 } else { 50 };
                (id, cost)
            })
            .collect();
        let plan = suggest_rebalance_from(&pg, CostSource::MeasuredPerSubgraph(&measured), 4);
        assert!(!plan.moves.is_empty());
        for mv in &plan.moves {
            assert_ne!(
                mv.subgraph, hot_small,
                "the measured-dominant subgraph stays"
            );
            assert_eq!(mv.est_cost, 50, "moves carry measured, not proxy, costs");
        }
        assert!(plan.makespan_after < plan.makespan_before);
        plan.apply(&pg).unwrap().validate(pg.template()).unwrap();
    }

    #[test]
    fn proportional_source_matches_legacy_entry_point() {
        let pg = fixture();
        let a = suggest_rebalance(&pg, &[600, 100], 4);
        let b = suggest_rebalance_from(&pg, CostSource::PartitionProportional(&[600, 100]), 4);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.makespan_before, b.makespan_before);
        assert_eq!(a.makespan_after, b.makespan_after);
    }
}
