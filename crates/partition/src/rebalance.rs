//! Subgraph rebalancing — the paper's §IV.D research direction.
//!
//! *"Partitions which are active at a given timestep can pass some of their
//! subgraphs to an idle partition if the potential improvements in average
//! CPU utilization outweighs the cost of rebalancing. … partitioning
//! produces a long tail of small subgraphs in each partition and one large
//! subgraph dominates. So these small subgraphs could be candidates for
//! moving."*
//!
//! This module implements that proposal as an offline analyzer: given the
//! measured per-partition compute cost of a finished run, it greedily moves
//! *small* subgraphs (never each partition's dominant one) from overloaded
//! to underloaded partitions, attributing cost to a subgraph proportionally
//! to its vertex count, and predicts the makespan improvement. The ablation
//! bench applies the plan and re-runs to check the prediction.

use crate::{PartitionedGraph, Partitioning, SubgraphId};

/// One proposed move.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Move {
    /// Subgraph to relocate.
    pub subgraph: SubgraphId,
    /// Current partition.
    pub from: u16,
    /// Proposed partition.
    pub to: u16,
    /// Estimated cost (ns) this move shifts.
    pub est_cost: u64,
}

/// A rebalancing proposal.
#[derive(Clone, Debug, Default)]
pub struct RebalancePlan {
    /// Moves, in application order.
    pub moves: Vec<Move>,
    /// Makespan (max per-partition cost) before, in the cost model's unit.
    pub makespan_before: u64,
    /// Predicted makespan after applying all moves.
    pub makespan_after: u64,
}

impl RebalancePlan {
    /// Predicted speedup factor.
    pub fn predicted_speedup(&self) -> f64 {
        if self.makespan_after == 0 {
            return 1.0;
        }
        self.makespan_before as f64 / self.makespan_after as f64
    }

    /// Apply the plan to a partitioning, producing the new vertex→partition
    /// assignment (subgraph members move wholesale).
    pub fn apply(&self, pg: &PartitionedGraph) -> Partitioning {
        let mut assignment = pg.partitioning().assignment.clone();
        for mv in &self.moves {
            for &v in pg.subgraph(mv.subgraph).vertices() {
                assignment[v.idx()] = mv.to;
            }
        }
        Partitioning {
            assignment,
            k: pg.partitioning().k,
        }
    }
}

/// Propose up to `max_moves` subgraph relocations given measured
/// per-partition costs (e.g. compute nanoseconds from a run's metrics).
///
/// Cost attribution: a partition's measured cost is split across its
/// subgraphs proportionally to vertex count — the best estimate available
/// without per-subgraph instrumentation, and conservative because the
/// dominant subgraph (which the paper says should *not* move) absorbs most
/// of the cost and is excluded from candidacy.
pub fn suggest_rebalance(
    pg: &PartitionedGraph,
    per_partition_cost: &[u64],
    max_moves: usize,
) -> RebalancePlan {
    let k = pg.num_partitions();
    assert_eq!(per_partition_cost.len(), k, "one cost per partition");
    let mut load: Vec<u64> = per_partition_cost.to_vec();
    let makespan_before = load.iter().copied().max().unwrap_or(0);

    // Per-subgraph cost estimate.
    let mut sg_cost: Vec<u64> = vec![0; pg.subgraphs().len()];
    let mut dominant: Vec<Option<SubgraphId>> = vec![None; k];
    for p in 0..k as u16 {
        let ids = pg.subgraphs_of_partition(p);
        let total_vertices: usize = ids.iter().map(|&id| pg.subgraph(id).num_vertices()).sum();
        if total_vertices == 0 {
            continue;
        }
        for &id in ids {
            let share = pg.subgraph(id).num_vertices() as u128;
            sg_cost[id.idx()] =
                ((per_partition_cost[p as usize] as u128 * share) / total_vertices as u128) as u64;
        }
        dominant[p as usize] = ids
            .iter()
            .copied()
            .max_by_key(|&id| pg.subgraph(id).num_vertices());
    }

    let mut moved: Vec<bool> = vec![false; pg.subgraphs().len()];
    let mut moves = Vec::new();
    for _ in 0..max_moves {
        let busiest = (0..k).max_by_key(|&p| load[p]).expect("k ≥ 1") as u16;
        let idlest = (0..k).min_by_key(|&p| load[p]).expect("k ≥ 1") as u16;
        if busiest == idlest {
            break;
        }
        let gap = load[busiest as usize] - load[idlest as usize];
        // Best candidate: the movable subgraph whose cost is closest to
        // half the gap (moving more than the gap inverts the imbalance).
        let candidate = pg
            .subgraphs_of_partition(busiest)
            .iter()
            .copied()
            .filter(|&id| Some(id) != dominant[busiest as usize] && !moved[id.idx()])
            .filter(|&id| sg_cost[id.idx()] > 0 && sg_cost[id.idx()] < gap)
            .min_by_key(|&id| (gap / 2).abs_diff(sg_cost[id.idx()]));
        let Some(id) = candidate else { break };
        let cost = sg_cost[id.idx()];
        load[busiest as usize] -= cost;
        load[idlest as usize] += cost;
        moved[id.idx()] = true;
        moves.push(Move {
            subgraph: id,
            from: busiest,
            to: idlest,
            est_cost: cost,
        });
    }

    RebalancePlan {
        moves,
        makespan_before,
        makespan_after: load.into_iter().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover_subgraphs;
    use std::sync::Arc;
    use tempograph_core::TemplateBuilder;

    /// Partition 0: one big subgraph (8 vertices) + two small (2 each);
    /// partition 1: one small subgraph (2 vertices).
    fn fixture() -> PartitionedGraph {
        let mut b = TemplateBuilder::new("rb", false);
        for i in 0..14 {
            b.add_vertex(i);
        }
        let mut eid = 0;
        // big component 0..8 in partition 0
        for i in 0..7u64 {
            b.add_edge(eid, i, i + 1).unwrap();
            eid += 1;
        }
        // small components {8,9} and {10,11} in partition 0
        b.add_edge(eid, 8, 9).unwrap();
        eid += 1;
        b.add_edge(eid, 10, 11).unwrap();
        eid += 1;
        // small component {12,13} in partition 1
        b.add_edge(eid, 12, 13).unwrap();
        let t = Arc::new(b.finalize().unwrap());
        let mut assignment = vec![0u16; 14];
        assignment[12] = 1;
        assignment[13] = 1;
        discover_subgraphs(t, Partitioning { assignment, k: 2 })
    }

    #[test]
    fn moves_small_subgraphs_not_the_dominant_one() {
        let pg = fixture();
        // Partition 0 is 6× busier.
        let plan = suggest_rebalance(&pg, &[600, 100], 4);
        assert!(!plan.moves.is_empty());
        for mv in &plan.moves {
            assert_eq!(mv.from, 0);
            assert_eq!(mv.to, 1);
            // Never the 8-vertex dominant subgraph.
            assert!(pg.subgraph(mv.subgraph).num_vertices() <= 2);
        }
        assert!(plan.makespan_after < plan.makespan_before);
        assert!(plan.predicted_speedup() > 1.0);
    }

    #[test]
    fn apply_produces_valid_partitioning() {
        let pg = fixture();
        let plan = suggest_rebalance(&pg, &[600, 100], 4);
        let newp = plan.apply(&pg);
        newp.validate(pg.template()).unwrap();
        // Moved subgraphs' vertices now live in the target partition.
        for mv in &plan.moves {
            for &v in pg.subgraph(mv.subgraph).vertices() {
                assert_eq!(newp.assignment[v.idx()], mv.to);
            }
        }
    }

    #[test]
    fn balanced_load_yields_empty_plan() {
        let pg = fixture();
        let plan = suggest_rebalance(&pg, &[100, 100], 4);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.predicted_speedup(), 1.0);
    }

    #[test]
    fn respects_max_moves() {
        let pg = fixture();
        let plan = suggest_rebalance(&pg, &[1000, 10], 1);
        assert!(plan.moves.len() <= 1);
    }
}
