//! Hash partitioner: the Pregel-default baseline.
//!
//! Assigns vertex `v` to partition `h(id(v)) mod k`. Ignores structure
//! entirely — expected cut fraction `(k−1)/k` — which is exactly why the
//! subgraph-centric papers use METIS instead; kept as the ablation floor.

use crate::{Partitioner, Partitioning};
use tempograph_core::GraphTemplate;

/// See module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

/// SplitMix64: tiny, high-quality 64-bit mixer (public domain constants) —
/// avoids pulling in a hashing crate for one function.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Partitioner for HashPartitioner {
    fn partition(&self, template: &GraphTemplate, k: usize) -> Partitioning {
        assert!(k >= 1 && k <= u16::MAX as usize, "k out of range");
        let assignment = template
            .vertices()
            .map(|v| (splitmix64(template.vertex_id(v)) % k as u64) as u16)
            .collect();
        Partitioning { assignment, k }
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{balance, cut_fraction};
    use tempograph_core::TemplateBuilder;

    fn line(n: u64) -> GraphTemplate {
        let mut b = TemplateBuilder::new("line", false);
        for i in 0..n {
            b.add_vertex(i);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i, i + 1).unwrap();
        }
        b.finalize().unwrap()
    }

    #[test]
    fn covers_all_partitions_roughly_evenly() {
        let t = line(3000);
        let p = HashPartitioner.partition(&t, 3);
        p.validate(&t).unwrap();
        assert!(balance(&t, &p) < 1.15, "hash should be near-balanced");
    }

    #[test]
    fn cut_is_near_random_expectation() {
        let t = line(5000);
        let p = HashPartitioner.partition(&t, 4);
        let f = cut_fraction(&t, &p);
        // Expected (k-1)/k = 0.75 for random assignment.
        assert!((0.6..0.9).contains(&f), "cut fraction {f}");
    }

    #[test]
    fn deterministic() {
        let t = line(100);
        assert_eq!(
            HashPartitioner.partition(&t, 5).assignment,
            HashPartitioner.partition(&t, 5).assignment
        );
    }

    #[test]
    fn k_equals_one() {
        let t = line(10);
        let p = HashPartitioner.partition(&t, 1);
        assert!(p.assignment.iter().all(|&x| x == 0));
    }
}
