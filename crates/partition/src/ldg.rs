//! Linear Deterministic Greedy (LDG) streaming partitioner.
//!
//! Stanton & Kliot's one-pass heuristic: vertices arrive in a stream and
//! each is placed on the partition maximising
//! `|N(v) ∩ P| · (1 − |P|/C)` where `C` is the per-partition capacity.
//! Much better than hash on structured graphs, worse than multilevel —
//! the middle rung of ablation A3.

use crate::{Partitioner, Partitioning};
use tempograph_core::GraphTemplate;

/// See module docs. Streams vertices in BFS order from vertex 0 (falling
/// back to index order for disconnected remainders), which substantially
/// improves locality over arbitrary order on road networks.
#[derive(Clone, Copy, Debug, Default)]
pub struct LdgPartitioner;

impl Partitioner for LdgPartitioner {
    fn partition(&self, template: &GraphTemplate, k: usize) -> Partitioning {
        assert!(k >= 1 && k <= u16::MAX as usize, "k out of range");
        let n = template.num_vertices();
        let capacity = (n as f64 / k as f64) * 1.05 + 1.0;
        let mut assignment: Vec<u16> = vec![u16::MAX; n];
        let mut sizes = vec![0usize; k];

        // BFS streaming order over the undirected structure.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // Symmetric adjacency view: for directed templates we need reverse
        // edges too; build a compact symmetric adjacency once.
        let mut sym: Vec<Vec<u32>> = vec![Vec::new(); n];
        for e in template.edges() {
            let (s, d) = template.endpoints(e);
            sym[s.idx()].push(d.0);
            sym[d.idx()].push(s.0);
        }
        let mut queue = std::collections::VecDeque::new();
        for root in 0..n {
            if seen[root] {
                continue;
            }
            seen[root] = true;
            queue.push_back(root as u32);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &nb in &sym[u as usize] {
                    if !seen[nb as usize] {
                        seen[nb as usize] = true;
                        queue.push_back(nb);
                    }
                }
            }
        }

        let mut neighbor_count = vec![0u32; k];
        for &v in &order {
            neighbor_count.iter_mut().for_each(|c| *c = 0);
            for &nb in &sym[v as usize] {
                let p = assignment[nb as usize];
                if p != u16::MAX {
                    neighbor_count[p as usize] += 1;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for p in 0..k {
                let penalty = 1.0 - sizes[p] as f64 / capacity;
                let score = neighbor_count[p] as f64 * penalty + penalty * 1e-9;
                if score > best_score {
                    best_score = score;
                    best = p;
                }
            }
            assignment[v as usize] = best as u16;
            sizes[best] += 1;
        }

        Partitioning { assignment, k }
    }

    fn name(&self) -> &'static str {
        "ldg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashPartitioner;
    use crate::quality::{balance, cut_fraction};
    use tempograph_gen::{road_network, RoadNetConfig};

    #[test]
    fn beats_hash_on_road_network() {
        let t = road_network(&RoadNetConfig {
            width: 40,
            height: 40,
            ..Default::default()
        });
        let ldg = LdgPartitioner.partition(&t, 4);
        let hash = HashPartitioner.partition(&t, 4);
        ldg.validate(&t).unwrap();
        let (fl, fh) = (cut_fraction(&t, &ldg), cut_fraction(&t, &hash));
        assert!(fl < fh / 2.0, "LDG {fl} should cut far less than hash {fh}");
    }

    #[test]
    fn respects_capacity_roughly() {
        let t = road_network(&RoadNetConfig {
            width: 30,
            height: 30,
            ..Default::default()
        });
        let p = LdgPartitioner.partition(&t, 3);
        assert!(balance(&t, &p) <= 1.10, "balance {}", balance(&t, &p));
    }

    #[test]
    fn every_vertex_assigned() {
        let t = road_network(&RoadNetConfig {
            width: 12,
            height: 12,
            ..Default::default()
        });
        let p = LdgPartitioner.partition(&t, 5);
        assert!(p.assignment.iter().all(|&x| (x as usize) < 5));
    }

    #[test]
    fn deterministic() {
        let t = road_network(&RoadNetConfig {
            width: 15,
            height: 15,
            ..Default::default()
        });
        assert_eq!(
            LdgPartitioner.partition(&t, 3).assignment,
            LdgPartitioner.partition(&t, 3).assignment
        );
    }
}
