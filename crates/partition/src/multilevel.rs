//! METIS-like multilevel k-way partitioner.
//!
//! Three classic phases:
//!
//! 1. **Coarsening** — repeated heavy-edge matching (HEM): each unmatched
//!    vertex matches its unmatched neighbour with the heaviest connecting
//!    edge; matched pairs collapse into one coarse vertex whose weight is the
//!    pair's sum and whose parallel edges merge by weight.
//! 2. **Initial partitioning** — greedy graph growing on the coarsest graph:
//!    regions grow one partition at a time from a seed, always absorbing the
//!    frontier vertex most connected to the region, until the weight target
//!    is met.
//! 3. **Uncoarsening + refinement** — the assignment is projected back level
//!    by level; at each level several greedy boundary-refinement passes move
//!    vertices to the neighbouring partition with the highest edge-weight
//!    gain, subject to the load-factor constraint (1.03 by default — the
//!    METIS setting the paper cites).
//!
//! On lattice-like road networks this yields sub-0.1 % cuts; on power-law
//! small-world graphs cuts grow steeply with k — the contrast the paper's
//! edge-cut table documents.

use crate::{Partitioner, Partitioning};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tempograph_core::GraphTemplate;

/// Tuning knobs for [`MultilevelPartitioner`].
#[derive(Clone, Debug)]
pub struct MultilevelConfig {
    /// Stop coarsening when the graph has at most `coarsen_to_per_part * k`
    /// vertices.
    pub coarsen_to_per_part: usize,
    /// Greedy boundary-refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Allowed load factor: max partition weight ≤ `load_factor · W/k`.
    /// METIS's default (and the paper's) is 1.03.
    pub load_factor: f64,
    /// RNG seed (matching order, seed selection).
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsen_to_per_part: 60,
            refine_passes: 6,
            load_factor: 1.03,
            seed: 0x4E71_5000,
        }
    }
}

/// See module docs.
#[derive(Clone, Debug, Default)]
pub struct MultilevelPartitioner {
    /// Configuration; `Default` matches METIS-like settings.
    pub config: MultilevelConfig,
}

/// Weighted working graph used during coarsening.
struct WGraph {
    vwgt: Vec<u64>,
    /// Adjacency as (neighbor, edge weight); symmetric, no self loops.
    adj: Vec<Vec<(u32, u64)>>,
}

impl WGraph {
    fn n(&self) -> usize {
        self.vwgt.len()
    }

    fn total_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    fn from_template(t: &GraphTemplate) -> WGraph {
        let n = t.num_vertices();
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for e in t.edges() {
            let (s, d) = t.endpoints(e);
            if s == d {
                continue;
            }
            adj[s.idx()].push((d.0, 1));
            adj[d.idx()].push((s.0, 1));
        }
        // Merge parallel edges.
        for list in &mut adj {
            list.sort_unstable_by_key(|&(v, _)| v);
            list.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
        }
        WGraph {
            vwgt: vec![1; n],
            adj,
        }
    }
}

impl MultilevelPartitioner {
    /// Coarsen once with heavy-edge matching. Returns the coarse graph and
    /// the fine→coarse vertex map.
    fn coarsen(g: &WGraph, rng: &mut StdRng) -> (WGraph, Vec<u32>) {
        let n = g.n();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(rng);
        let mut matched: Vec<u32> = vec![u32::MAX; n];
        let mut n_coarse = 0u32;
        let mut coarse_of = vec![u32::MAX; n];
        for &v in &order {
            if matched[v as usize] != u32::MAX {
                continue;
            }
            // Heaviest unmatched neighbour.
            let mut best: Option<(u32, u64)> = None;
            for &(nb, w) in &g.adj[v as usize] {
                if matched[nb as usize] == u32::MAX && best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((nb, w));
                }
            }
            match best {
                Some((nb, _)) => {
                    matched[v as usize] = nb;
                    matched[nb as usize] = v;
                    coarse_of[v as usize] = n_coarse;
                    coarse_of[nb as usize] = n_coarse;
                }
                None => {
                    matched[v as usize] = v;
                    coarse_of[v as usize] = n_coarse;
                }
            }
            n_coarse += 1;
        }

        let nc = n_coarse as usize;
        let mut vwgt = vec![0u64; nc];
        for v in 0..n {
            vwgt[coarse_of[v] as usize] += g.vwgt[v];
        }
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); nc];
        for v in 0..n {
            let cv = coarse_of[v];
            for &(nb, w) in &g.adj[v] {
                let cn = coarse_of[nb as usize];
                if cn != cv {
                    adj[cv as usize].push((cn, w));
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable_by_key(|&(v, _)| v);
            list.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
        }
        (WGraph { vwgt, adj }, coarse_of)
    }

    /// Greedy graph growing initial partitioning on the coarsest graph.
    fn initial_partition(g: &WGraph, k: usize, rng: &mut StdRng) -> Vec<u16> {
        let n = g.n();
        let total = g.total_weight();
        let target = total / k as u64;
        let mut part = vec![u16::MAX; n];
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(rng);
        let mut cursor = 0usize;

        for p in 0..k - 1 {
            // Seed: first unassigned vertex in shuffled order.
            while cursor < n && part[order[cursor] as usize] != u16::MAX {
                cursor += 1;
            }
            if cursor >= n {
                break;
            }
            let seed = order[cursor];
            let mut region_weight = 0u64;
            // Frontier with connection strength to the region.
            let mut conn: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
            conn.insert(seed, 0);
            while region_weight < target && !conn.is_empty() {
                // Absorb the most-connected frontier vertex.
                let (&v, _) = conn
                    .iter()
                    .max_by_key(|&(&v, &w)| (w, std::cmp::Reverse(v)))
                    .expect("non-empty");
                conn.remove(&v);
                if part[v as usize] != u16::MAX {
                    continue;
                }
                part[v as usize] = p as u16;
                region_weight += g.vwgt[v as usize];
                for &(nb, w) in &g.adj[v as usize] {
                    if part[nb as usize] == u16::MAX {
                        *conn.entry(nb).or_insert(0) += w;
                    }
                }
            }
        }
        // Remainder to the last partition.
        for x in part.iter_mut() {
            if *x == u16::MAX {
                *x = (k - 1) as u16;
            }
        }
        part
    }

    /// Greedy boundary refinement: move vertices to the neighbour partition
    /// with the highest positive gain, subject to the balance constraint.
    fn refine(g: &WGraph, part: &mut [u16], k: usize, passes: usize, load_factor: f64) {
        let total = g.total_weight();
        let max_weight = ((total as f64 / k as f64) * load_factor).ceil() as u64;
        let mut weights = vec![0u64; k];
        for (v, &p) in part.iter().enumerate() {
            weights[p as usize] += g.vwgt[v];
        }
        let mut gain = vec![0i64; k];
        for _ in 0..passes {
            let mut moved = 0usize;
            for v in 0..g.n() {
                let own = part[v] as usize;
                if g.adj[v].is_empty() {
                    continue;
                }
                // Edge weight towards each partition.
                gain.iter_mut().for_each(|x| *x = 0);
                let mut is_boundary = false;
                for &(nb, w) in &g.adj[v] {
                    let p = part[nb as usize] as usize;
                    gain[p] += w as i64;
                    if p != own {
                        is_boundary = true;
                    }
                }
                if !is_boundary {
                    continue;
                }
                let own_conn = gain[own];
                let mut best: Option<(usize, i64)> = None;
                for (p, &conn) in gain.iter().enumerate() {
                    if p == own {
                        continue;
                    }
                    let gp = conn - own_conn;
                    if gp > 0
                        && weights[p] + g.vwgt[v] <= max_weight
                        && best.is_none_or(|(_, bg)| gp > bg)
                    {
                        best = Some((p, gp));
                    }
                }
                if let Some((p, _)) = best {
                    weights[own] -= g.vwgt[v];
                    weights[p] += g.vwgt[v];
                    part[v] = p as u16;
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }

        // Rebalance: greedy gain moves never fix overweight partitions, so
        // explicitly drain them — move boundary vertices of overweight
        // partitions to their least-loaded neighbouring partition (accepting
        // negative gain) until the load factor holds or no move helps.
        let ideal = (total as f64 / k as f64).ceil() as u64;
        for _ in 0..passes.max(4) {
            if weights.iter().all(|&w| w <= max_weight) {
                break;
            }
            let mut moved = 0usize;
            for v in 0..g.n() {
                let own = part[v] as usize;
                if weights[own] <= max_weight {
                    continue;
                }
                gain.iter_mut().for_each(|x| *x = 0);
                let mut has_neighbor_partition = false;
                for &(nb, w) in &g.adj[v] {
                    let p = part[nb as usize] as usize;
                    gain[p] += w as i64;
                    if p != own {
                        has_neighbor_partition = true;
                    }
                }
                // Prefer a connected partition; fall back to the lightest.
                let target = if has_neighbor_partition {
                    (0..k)
                        .filter(|&p| p != own && gain[p] > 0 && weights[p] + g.vwgt[v] <= ideal)
                        .max_by_key(|&p| gain[p])
                } else {
                    None
                }
                .or_else(|| {
                    let lightest = (0..k).filter(|&p| p != own).min_by_key(|&p| weights[p])?;
                    (weights[lightest] + g.vwgt[v] <= ideal).then_some(lightest)
                });
                if let Some(p) = target {
                    weights[own] -= g.vwgt[v];
                    weights[p] += g.vwgt[v];
                    part[v] = p as u16;
                    moved += 1;
                    if weights[own] <= max_weight {
                        continue;
                    }
                }
            }
            if moved == 0 {
                break;
            }
        }
    }
}

impl Partitioner for MultilevelPartitioner {
    fn partition(&self, template: &GraphTemplate, k: usize) -> Partitioning {
        assert!(k >= 1 && k <= u16::MAX as usize, "k out of range");
        let n = template.num_vertices();
        if k == 1 || n == 0 {
            return Partitioning {
                assignment: vec![0; n],
                k,
            };
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Coarsening ladder.
        let mut graphs: Vec<WGraph> = vec![WGraph::from_template(template)];
        let mut maps: Vec<Vec<u32>> = Vec::new();
        let stop_at = (self.config.coarsen_to_per_part * k).max(2 * k);
        loop {
            let top = graphs.last().expect("non-empty ladder");
            if top.n() <= stop_at {
                break;
            }
            let (coarse, map) = Self::coarsen(top, &mut rng);
            // Bail if matching stalls (< 10 % shrink), e.g. on star graphs.
            if coarse.n() as f64 > top.n() as f64 * 0.9 {
                break;
            }
            graphs.push(coarse);
            maps.push(map);
        }

        // Initial partition at the coarsest level.
        let coarsest = graphs.last().expect("non-empty ladder");
        let mut part = Self::initial_partition(coarsest, k, &mut rng);
        Self::refine(
            coarsest,
            &mut part,
            k,
            self.config.refine_passes * 2,
            self.config.load_factor,
        );

        // Uncoarsen with refinement at each level.
        for level in (0..maps.len()).rev() {
            let fine = &graphs[level];
            let map = &maps[level];
            let mut fine_part = vec![0u16; fine.n()];
            for v in 0..fine.n() {
                fine_part[v] = part[map[v] as usize];
            }
            Self::refine(
                fine,
                &mut fine_part,
                k,
                self.config.refine_passes,
                self.config.load_factor,
            );
            part = fine_part;
        }

        Partitioning {
            assignment: part,
            k,
        }
    }

    fn name(&self) -> &'static str {
        "multilevel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashPartitioner;
    use crate::ldg::LdgPartitioner;
    use crate::quality::{balance, cut_fraction};
    use tempograph_gen::{road_network, small_world, RoadNetConfig, SmallWorldConfig};

    #[test]
    fn road_network_cut_is_tiny() {
        let t = road_network(&RoadNetConfig {
            width: 50,
            height: 50,
            ..Default::default()
        });
        let p = MultilevelPartitioner::default().partition(&t, 3);
        p.validate(&t).unwrap();
        let f = cut_fraction(&t, &p);
        assert!(f < 0.03, "road cut fraction should be tiny, got {f}");
    }

    #[test]
    fn balance_respects_load_factor_band() {
        let t = road_network(&RoadNetConfig {
            width: 40,
            height: 40,
            ..Default::default()
        });
        for k in [3, 6, 9] {
            let p = MultilevelPartitioner::default().partition(&t, k);
            let b = balance(&t, &p);
            assert!(b <= 1.10, "k = {k}: balance {b} too loose");
        }
    }

    #[test]
    fn beats_ldg_and_hash_on_road() {
        let t = road_network(&RoadNetConfig {
            width: 40,
            height: 40,
            ..Default::default()
        });
        let ml = cut_fraction(&t, &MultilevelPartitioner::default().partition(&t, 6));
        let ldg = cut_fraction(&t, &LdgPartitioner.partition(&t, 6));
        let hash = cut_fraction(&t, &HashPartitioner.partition(&t, 6));
        assert!(ml < ldg, "multilevel {ml} ≥ ldg {ldg}");
        assert!(ml < hash / 10.0, "multilevel {ml} not ≪ hash {hash}");
    }

    #[test]
    fn wiki_cut_grows_with_k_and_exceeds_road() {
        let wiki = small_world(&SmallWorldConfig {
            vertices: 4000,
            ..Default::default()
        });
        let road = road_network(&RoadNetConfig {
            width: 63,
            height: 63,
            ..Default::default()
        });
        let ml = MultilevelPartitioner::default();
        let w3 = cut_fraction(&wiki, &ml.partition(&wiki, 3));
        let w9 = cut_fraction(&wiki, &ml.partition(&wiki, 9));
        let r3 = cut_fraction(&road, &ml.partition(&road, 3));
        // The paper's table: WIKI cuts ≫ CARN cuts, and WIKI grows with k.
        assert!(w3 > 10.0 * r3, "wiki {w3} vs road {r3}");
        assert!(w9 > w3, "wiki cut must grow with k: {w3} → {w9}");
    }

    #[test]
    fn k_one_trivial() {
        let t = road_network(&RoadNetConfig {
            width: 10,
            height: 10,
            ..Default::default()
        });
        let p = MultilevelPartitioner::default().partition(&t, 1);
        assert!(p.assignment.iter().all(|&x| x == 0));
        assert_eq!(cut_fraction(&t, &p), 0.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let t = road_network(&RoadNetConfig {
            width: 20,
            height: 20,
            ..Default::default()
        });
        let a = MultilevelPartitioner::default().partition(&t, 4);
        let b = MultilevelPartitioner::default().partition(&t, 4);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn handles_graph_smaller_than_k() {
        let mut b = tempograph_core::TemplateBuilder::new("tiny", false);
        for i in 0..3 {
            b.add_vertex(i);
        }
        b.add_edge(0, 0, 1).unwrap();
        let t = b.finalize().unwrap();
        let p = MultilevelPartitioner::default().partition(&t, 9);
        p.validate(&t).unwrap();
    }
}
