//! Subgraph discovery: the unit of computation in the subgraph-centric model.
//!
//! §II.C: *"A subgraph within a partition is a maximal set of vertices that
//! are weakly connected through only local edges."* This module finds those
//! components with a union-find over intra-partition edges and freezes them
//! into a [`PartitionedGraph`]: per-subgraph CSR adjacency split into
//! **local** neighbours (same subgraph, traversed in-memory) and **remote**
//! neighbours (other partitions' subgraphs, reached by message passing).

use crate::Partitioning;
use std::collections::HashMap;
use std::sync::Arc;
use tempograph_core::{EdgeIdx, GraphTemplate, VertexIdx};

/// Globally unique subgraph identifier (dense, across all partitions).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SubgraphId(pub u32);

impl SubgraphId {
    /// Index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SubgraphId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sg{}", self.0)
    }
}

/// An adjacency entry crossing partitions: the far endpoint lives in another
/// partition's subgraph and is reachable only via messaging.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RemoteNeighbor {
    /// Remote endpoint (template index).
    pub vertex: VertexIdx,
    /// Connecting edge (template index) — lets algorithms read edge
    /// attributes such as latency for the crossing edge.
    pub edge: EdgeIdx,
    /// Subgraph owning the remote endpoint.
    pub subgraph: SubgraphId,
    /// Partition owning the remote endpoint.
    pub partition: u16,
}

/// One weakly-connected component over local edges, with frozen CSR
/// adjacency. Local neighbours are addressed by *local position* (index into
/// [`Subgraph::vertices`]) so algorithm state can live in dense per-subgraph
/// vectors.
#[derive(Clone, Debug)]
pub struct Subgraph {
    id: SubgraphId,
    partition: u16,
    /// Member vertices (template indices), sorted ascending.
    vertices: Vec<VertexIdx>,
    /// All distinct edges touching this subgraph (local edges + remote
    /// crossing edges), sorted ascending — the subgraph's edge universe for
    /// GoFS attribute projection.
    edges: Vec<EdgeIdx>,
    local_offsets: Vec<u32>,
    /// (local position of target, connecting edge).
    local_adj: Vec<(u32, EdgeIdx)>,
    remote_offsets: Vec<u32>,
    remote_adj: Vec<RemoteNeighbor>,
}

impl Subgraph {
    /// Globally unique id.
    pub fn id(&self) -> SubgraphId {
        self.id
    }

    /// Owning partition.
    pub fn partition(&self) -> u16 {
        self.partition
    }

    /// Number of member vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Member vertices (sorted by template index).
    pub fn vertices(&self) -> &[VertexIdx] {
        &self.vertices
    }

    /// Template index of the vertex at local position `pos`.
    #[inline]
    pub fn vertex_at(&self, pos: u32) -> VertexIdx {
        self.vertices[pos as usize]
    }

    /// Local position of template vertex `v`, if it belongs to this subgraph.
    pub fn local_pos(&self, v: VertexIdx) -> Option<u32> {
        self.vertices.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Intra-subgraph neighbours of the vertex at local position `pos`.
    #[inline]
    pub fn local_neighbors(&self, pos: u32) -> &[(u32, EdgeIdx)] {
        let lo = self.local_offsets[pos as usize] as usize;
        let hi = self.local_offsets[pos as usize + 1] as usize;
        &self.local_adj[lo..hi]
    }

    /// Cross-partition neighbours of the vertex at local position `pos`.
    #[inline]
    pub fn remote_neighbors(&self, pos: u32) -> &[RemoteNeighbor] {
        let lo = self.remote_offsets[pos as usize] as usize;
        let hi = self.remote_offsets[pos as usize + 1] as usize;
        &self.remote_adj[lo..hi]
    }

    /// Total number of remote edges leaving this subgraph.
    pub fn num_remote_edges(&self) -> usize {
        self.remote_adj.len()
    }

    /// All distinct edges touching this subgraph (local + crossing), sorted.
    pub fn edges(&self) -> &[EdgeIdx] {
        &self.edges
    }

    /// Number of distinct edges touching this subgraph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Position of template edge `e` within [`Subgraph::edges`], if present.
    /// Edge-attribute rows in a projected subgraph instance use this index.
    pub fn edge_pos(&self, e: EdgeIdx) -> Option<u32> {
        self.edges.binary_search(&e).ok().map(|i| i as u32)
    }

    /// Iterate all local positions.
    pub fn positions(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.vertices.len() as u32
    }
}

/// The engine's world view: template + partitioning + frozen subgraphs.
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    template: Arc<GraphTemplate>,
    partitioning: Partitioning,
    subgraphs: Vec<Subgraph>,
    partition_subgraphs: Vec<Vec<SubgraphId>>,
    vertex_to_subgraph: Vec<SubgraphId>,
}

impl PartitionedGraph {
    /// The shared template.
    pub fn template(&self) -> &Arc<GraphTemplate> {
        &self.template
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitioning.k
    }

    /// The vertex→partition assignment this graph was built from.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// All subgraphs, ordered by [`SubgraphId`].
    pub fn subgraphs(&self) -> &[Subgraph] {
        &self.subgraphs
    }

    /// One subgraph by id.
    pub fn subgraph(&self, id: SubgraphId) -> &Subgraph {
        &self.subgraphs[id.idx()]
    }

    /// Ids of the subgraphs living in partition `p`.
    pub fn subgraphs_of_partition(&self, p: u16) -> &[SubgraphId] {
        &self.partition_subgraphs[p as usize]
    }

    /// The subgraph owning template vertex `v`.
    pub fn subgraph_of_vertex(&self, v: VertexIdx) -> SubgraphId {
        self.vertex_to_subgraph[v.idx()]
    }

    /// The largest subgraph (by vertex count) in partition `p` — the paper's
    /// Hashtag Aggregation designates "the largest subgraph present in the
    /// 1st partition" as the master aggregator.
    pub fn largest_subgraph_in_partition(&self, p: u16) -> Option<SubgraphId> {
        self.partition_subgraphs[p as usize]
            .iter()
            .copied()
            .max_by_key(|id| self.subgraphs[id.idx()].num_vertices())
    }
}

/// Discover subgraphs (weakly-connected components over local edges) and
/// freeze the partitioned view. `partitioning` must be valid for `template`.
pub fn discover_subgraphs(
    template: Arc<GraphTemplate>,
    partitioning: Partitioning,
) -> PartitionedGraph {
    partitioning
        .validate(&template)
        .expect("partitioning must match template");
    let n = template.num_vertices();
    let assignment = &partitioning.assignment;

    // Union-find over local edges (weakly connected: ignore direction).
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    for e in template.edges() {
        let (s, d) = template.endpoints(e);
        if assignment[s.idx()] == assignment[d.idx()] {
            let (rs, rd) = (find(&mut parent, s.0), find(&mut parent, d.0));
            if rs != rd {
                parent[rs as usize] = rd;
            }
        }
    }

    // Root → subgraph id, ids assigned in (partition, min-root-vertex) order
    // for determinism.
    let mut roots: Vec<(u16, u32)> = Vec::new();
    let mut root_of = vec![0u32; n];
    for v in 0..n as u32 {
        let r = find(&mut parent, v);
        root_of[v as usize] = r;
        if r == v {
            roots.push((assignment[v as usize], v));
        }
    }
    roots.sort_unstable();
    let mut sg_of_root: HashMap<u32, SubgraphId> = HashMap::with_capacity(roots.len());
    for (i, &(_, r)) in roots.iter().enumerate() {
        sg_of_root.insert(r, SubgraphId(i as u32));
    }
    let vertex_to_subgraph: Vec<SubgraphId> = (0..n).map(|v| sg_of_root[&root_of[v]]).collect();

    // Gather members per subgraph (ascending vertex order by construction).
    let num_sg = roots.len();
    let mut members: Vec<Vec<VertexIdx>> = vec![Vec::new(); num_sg];
    for v in 0..n as u32 {
        members[vertex_to_subgraph[v as usize].idx()].push(VertexIdx(v));
    }

    // Freeze each subgraph's CSR.
    let mut subgraphs = Vec::with_capacity(num_sg);
    let mut partition_subgraphs: Vec<Vec<SubgraphId>> = vec![Vec::new(); partitioning.k];
    for (i, verts) in members.into_iter().enumerate() {
        let id = SubgraphId(i as u32);
        let part = assignment[verts[0].idx()];
        partition_subgraphs[part as usize].push(id);

        let mut edges: Vec<EdgeIdx> = Vec::new();
        let mut local_offsets = Vec::with_capacity(verts.len() + 1);
        let mut local_adj = Vec::new();
        let mut remote_offsets = Vec::with_capacity(verts.len() + 1);
        let mut remote_adj = Vec::new();
        local_offsets.push(0u32);
        remote_offsets.push(0u32);

        // Position lookup within this subgraph (verts is sorted).
        let pos_of = |v: VertexIdx| -> u32 { verts.binary_search(&v).expect("member") as u32 };

        for &v in &verts {
            for nb in template.neighbors(v) {
                edges.push(nb.edge);
                if assignment[nb.vertex.idx()] == part {
                    local_adj.push((pos_of(nb.vertex), nb.edge));
                } else {
                    remote_adj.push(RemoteNeighbor {
                        vertex: nb.vertex,
                        edge: nb.edge,
                        subgraph: vertex_to_subgraph[nb.vertex.idx()],
                        partition: assignment[nb.vertex.idx()],
                    });
                }
            }
            local_offsets.push(local_adj.len() as u32);
            remote_offsets.push(remote_adj.len() as u32);
        }

        edges.sort_unstable();
        edges.dedup();
        subgraphs.push(Subgraph {
            id,
            partition: part,
            vertices: verts,
            edges,
            local_offsets,
            local_adj,
            remote_offsets,
            remote_adj,
        });
    }

    PartitionedGraph {
        template,
        partitioning,
        subgraphs,
        partition_subgraphs,
        vertex_to_subgraph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MultilevelPartitioner, Partitioner};
    use tempograph_core::TemplateBuilder;
    use tempograph_gen::{road_network, RoadNetConfig};

    /// 0-1-2   3-4-5 (two components), partitioned as {0,1,3,4} / {2,5}.
    fn two_paths() -> (Arc<GraphTemplate>, Partitioning) {
        let mut b = TemplateBuilder::new("2p", false);
        for i in 0..6 {
            b.add_vertex(i);
        }
        b.add_edge(0, 0, 1).unwrap();
        b.add_edge(1, 1, 2).unwrap();
        b.add_edge(2, 3, 4).unwrap();
        b.add_edge(3, 4, 5).unwrap();
        let t = Arc::new(b.finalize().unwrap());
        let p = Partitioning {
            assignment: vec![0, 0, 1, 0, 0, 1],
            k: 2,
        };
        (t, p)
    }

    #[test]
    fn discovers_expected_components() {
        let (t, p) = two_paths();
        let pg = discover_subgraphs(t, p);
        // Partition 0: {0,1} and {3,4} — two subgraphs.
        // Partition 1: {2} and {5} — two singleton subgraphs.
        assert_eq!(pg.subgraphs().len(), 4);
        assert_eq!(pg.subgraphs_of_partition(0).len(), 2);
        assert_eq!(pg.subgraphs_of_partition(1).len(), 2);
        let sg01 = pg.subgraph_of_vertex(VertexIdx(0));
        assert_eq!(pg.subgraph_of_vertex(VertexIdx(1)), sg01);
        assert_ne!(pg.subgraph_of_vertex(VertexIdx(3)), sg01);
    }

    #[test]
    fn remote_edges_point_to_right_subgraph() {
        let (t, p) = two_paths();
        let pg = discover_subgraphs(t, p);
        let sg = pg.subgraph(pg.subgraph_of_vertex(VertexIdx(1)));
        let pos = sg.local_pos(VertexIdx(1)).unwrap();
        let remotes = sg.remote_neighbors(pos);
        assert_eq!(remotes.len(), 1);
        assert_eq!(remotes[0].vertex, VertexIdx(2));
        assert_eq!(remotes[0].partition, 1);
        assert_eq!(remotes[0].subgraph, pg.subgraph_of_vertex(VertexIdx(2)));
    }

    #[test]
    fn local_adjacency_within_subgraph() {
        let (t, p) = two_paths();
        let pg = discover_subgraphs(t, p);
        let sg = pg.subgraph(pg.subgraph_of_vertex(VertexIdx(0)));
        assert_eq!(sg.num_vertices(), 2);
        let pos0 = sg.local_pos(VertexIdx(0)).unwrap();
        let locals = sg.local_neighbors(pos0);
        assert_eq!(locals.len(), 1);
        assert_eq!(sg.vertex_at(locals[0].0), VertexIdx(1));
    }

    #[test]
    fn vertices_partition_into_subgraphs_completely() {
        let t = Arc::new(road_network(&RoadNetConfig {
            width: 25,
            height: 25,
            ..Default::default()
        }));
        let p = MultilevelPartitioner::default().partition(&t, 4);
        let pg = discover_subgraphs(t.clone(), p);
        let total: usize = pg.subgraphs().iter().map(|s| s.num_vertices()).sum();
        assert_eq!(total, t.num_vertices());
        // Every vertex's recorded subgraph actually contains it.
        for v in t.vertices() {
            let sg = pg.subgraph(pg.subgraph_of_vertex(v));
            assert!(sg.local_pos(v).is_some());
        }
    }

    #[test]
    fn local_plus_remote_degrees_match_template() {
        let t = Arc::new(road_network(&RoadNetConfig {
            width: 15,
            height: 15,
            ..Default::default()
        }));
        let p = MultilevelPartitioner::default().partition(&t, 3);
        let pg = discover_subgraphs(t.clone(), p);
        for v in t.vertices() {
            let sg = pg.subgraph(pg.subgraph_of_vertex(v));
            let pos = sg.local_pos(v).unwrap();
            let total = sg.local_neighbors(pos).len() + sg.remote_neighbors(pos).len();
            assert_eq!(total, t.degree(v), "degree mismatch at {v:?}");
        }
    }

    #[test]
    fn largest_subgraph_selection() {
        let (t, p) = two_paths();
        let pg = discover_subgraphs(t, p);
        let largest = pg.largest_subgraph_in_partition(0).unwrap();
        assert_eq!(pg.subgraph(largest).num_vertices(), 2);
        // Partition indices out of subgraph range handled: partition 1 has
        // singletons only.
        let l1 = pg.largest_subgraph_in_partition(1).unwrap();
        assert_eq!(pg.subgraph(l1).num_vertices(), 1);
    }

    #[test]
    fn subgraph_ids_are_dense_and_ordered_by_partition() {
        let (t, p) = two_paths();
        let pg = discover_subgraphs(t, p);
        for (i, sg) in pg.subgraphs().iter().enumerate() {
            assert_eq!(sg.id().idx(), i);
        }
        // Ids in partition 0 precede ids in partition 1.
        let max_p0 = pg.subgraphs_of_partition(0).iter().max().unwrap();
        let min_p1 = pg.subgraphs_of_partition(1).iter().min().unwrap();
        assert!(max_p0 < min_p1);
    }
}
