//! Property-based tests for partitioners and subgraph discovery.

use proptest::prelude::*;
use std::sync::Arc;
use tempograph_core::{GraphTemplate, TemplateBuilder};
use tempograph_partition::{
    balance, discover_subgraphs, edge_cut, HashPartitioner, LdgPartitioner, MultilevelPartitioner,
    Partitioner,
};

/// A random connected graph: a random tree plus extra random edges.
fn arb_connected_graph() -> impl Strategy<Value = (u64, Vec<(u64, u64)>)> {
    (2u64..80).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0u64..n, 0u64..n), 0..(n as usize));
        let parents = proptest::collection::vec(any::<u64>(), (n - 1) as usize);
        (Just(n), parents, extra).prop_map(|(n, parents, extra)| {
            let mut edges = Vec::new();
            for v in 1..n {
                edges.push((parents[(v - 1) as usize] % v, v));
            }
            for (a, b) in extra {
                edges.push((a % n, b % n));
            }
            (n, edges)
        })
    })
}

fn build(n: u64, edges: &[(u64, u64)]) -> GraphTemplate {
    let mut b = TemplateBuilder::new("prop", false);
    for v in 0..n {
        b.add_vertex(v);
    }
    for (i, &(s, d)) in edges.iter().enumerate() {
        b.add_edge(i as u64, s, d).unwrap();
    }
    b.finalize().unwrap()
}

proptest! {
    /// Every partitioner yields a valid assignment covering all vertices.
    #[test]
    fn partitioners_produce_valid_assignments(
        (n, edges) in arb_connected_graph(),
        k in 1usize..8,
    ) {
        let t = build(n, &edges);
        for p in [
            HashPartitioner.partition(&t, k),
            LdgPartitioner.partition(&t, k),
            MultilevelPartitioner::default().partition(&t, k),
        ] {
            prop_assert!(p.validate(&t).is_ok());
            prop_assert_eq!(p.sizes().iter().sum::<usize>(), t.num_vertices());
        }
    }

    /// Multilevel balance stays within a sane band whenever k ≤ n.
    #[test]
    fn multilevel_balance_bound(
        (n, edges) in arb_connected_graph(),
        k in 1usize..6,
    ) {
        prop_assume!(n as usize >= 4 * k);
        let t = build(n, &edges);
        let p = MultilevelPartitioner::default().partition(&t, k);
        // Small graphs allow slack: ideal ± 1 vertex dominates the ratio.
        let ideal = t.num_vertices() as f64 / k as f64;
        let bound = 1.03 + 1.5 / ideal;
        prop_assert!(
            balance(&t, &p) <= bound + 1e-9,
            "balance {} > bound {bound}",
            balance(&t, &p)
        );
    }

    /// k = 1 always yields zero cut; cut never exceeds |E|.
    #[test]
    fn edge_cut_bounds((n, edges) in arb_connected_graph(), k in 1usize..6) {
        let t = build(n, &edges);
        let single = MultilevelPartitioner::default().partition(&t, 1);
        prop_assert_eq!(edge_cut(&t, &single), 0);
        let p = MultilevelPartitioner::default().partition(&t, k);
        prop_assert!(edge_cut(&t, &p) <= t.num_edges());
    }

    /// Subgraph discovery invariants, for any partitioner output:
    /// * every vertex belongs to exactly one subgraph;
    /// * local + remote adjacency per vertex equals its template degree;
    /// * each subgraph's edge list covers exactly the edges its adjacency
    ///   mentions, and `edge_pos` inverts it;
    /// * subgraphs are internally weakly connected.
    #[test]
    fn subgraph_discovery_invariants(
        (n, edges) in arb_connected_graph(),
        k in 1usize..5,
    ) {
        let t = Arc::new(build(n, &edges));
        let part = LdgPartitioner.partition(&t, k);
        let pg = discover_subgraphs(t.clone(), part);

        // Coverage.
        let total: usize = pg.subgraphs().iter().map(|s| s.num_vertices()).sum();
        prop_assert_eq!(total, t.num_vertices());

        for sg in pg.subgraphs() {
            for pos in sg.positions() {
                let v = sg.vertex_at(pos);
                prop_assert_eq!(pg.subgraph_of_vertex(v), sg.id());
                let deg = sg.local_neighbors(pos).len() + sg.remote_neighbors(pos).len();
                prop_assert_eq!(deg, t.degree(v));
                // Local neighbours really are members; remote ones are not.
                for &(lp, e) in sg.local_neighbors(pos) {
                    prop_assert!(lp < sg.num_vertices() as u32);
                    prop_assert!(sg.edge_pos(e).is_some());
                }
                for rn in sg.remote_neighbors(pos) {
                    prop_assert!(sg.local_pos(rn.vertex).is_none());
                    prop_assert!(sg.edge_pos(rn.edge).is_some());
                    prop_assert_eq!(pg.subgraph_of_vertex(rn.vertex), rn.subgraph);
                    prop_assert_eq!(
                        pg.subgraph(rn.subgraph).partition(),
                        rn.partition
                    );
                }
            }
            // edge list sorted + deduplicated, edge_pos inverts.
            let edges = sg.edges();
            for w in edges.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for (q, &e) in edges.iter().enumerate() {
                prop_assert_eq!(sg.edge_pos(e), Some(q as u32));
            }
            // Internal weak connectivity via union-find over local edges.
            let nv = sg.num_vertices();
            let mut parent: Vec<u32> = (0..nv as u32).collect();
            fn find(p: &mut [u32], mut x: u32) -> u32 {
                while p[x as usize] != x {
                    let g = p[p[x as usize] as usize];
                    p[x as usize] = g;
                    x = g;
                }
                x
            }
            for pos in sg.positions() {
                for &(lp, _) in sg.local_neighbors(pos) {
                    let (a, b) = (find(&mut parent, pos), find(&mut parent, lp));
                    if a != b {
                        parent[a as usize] = b;
                    }
                }
            }
            let root = find(&mut parent, 0);
            for pos in 0..nv as u32 {
                prop_assert_eq!(find(&mut parent, pos), root, "subgraph not connected");
            }
        }
    }

    /// Determinism: same inputs, same outputs, for all three partitioners.
    #[test]
    fn partitioners_are_deterministic((n, edges) in arb_connected_graph(), k in 1usize..5) {
        let t = build(n, &edges);
        prop_assert_eq!(
            HashPartitioner.partition(&t, k).assignment,
            HashPartitioner.partition(&t, k).assignment
        );
        prop_assert_eq!(
            LdgPartitioner.partition(&t, k).assignment,
            LdgPartitioner.partition(&t, k).assignment
        );
        prop_assert_eq!(
            MultilevelPartitioner::default().partition(&t, k).assignment,
            MultilevelPartitioner::default().partition(&t, k).assignment
        );
    }
}
