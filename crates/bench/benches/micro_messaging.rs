//! M2 — microbenchmark for the inter-partition message path.
//!
//! Compares the **legacy reference path** (per-envelope 12-byte headers,
//! fresh allocations, receiver-side global sort — `engine::batch::legacy`)
//! against the **batched pipeline** (per-peer `MessageBatch` frames, pooled
//! buffers, optional sender-side combining, k-way merge) on a TDSP-like
//! duplicate-heavy workload: many senders relaxing a small set of hot
//! destination vertices.
//!
//! Besides the criterion samples, the binary performs a same-run timed
//! comparison and asserts the combiner-enabled batched path is at least
//! 2× faster than the legacy path (the PR's acceptance bar).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::BTreeMap;
use std::time::Instant;
use tempograph_algos::SsspCombiner;
use tempograph_core::VertexIdx;
use tempograph_engine::batch::{
    combine_envelopes, legacy, merge_sorted_runs, BufferPool, MessageBatch,
};
use tempograph_engine::wire::{sort_envelopes, Envelope};
use tempograph_partition::SubgraphId;

type Msg = (VertexIdx, f64);

/// Sender partitions feeding one receiver.
const SENDERS: u32 = 8;
/// Envelopes per sender per superstep.
const PER_SENDER: usize = 4096;
/// Distinct destination vertices — small, so the same vertex is relaxed
/// many times per superstep (the combiner's whole reason to exist).
const HOT_KEYS: u64 = 256;
/// Destination subgraphs at the receiving partition.
const DESTS: u32 = 16;

/// Deterministic TDSP-like traffic: sorted (from, seq), duplicate-heavy
/// destination vertices, f64 "arrival" payloads.
fn gen_sender(sender: u32) -> Vec<Envelope<Msg>> {
    let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ ((sender as u64) << 32);
    (0..PER_SENDER)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x % HOT_KEYS;
            Envelope {
                from: SubgraphId(sender),
                to: SubgraphId(1000 + (key as u32 % DESTS)),
                seq: i as u32,
                payload: (VertexIdx(key as u32), (x >> 16) as f64 / 1e6),
            }
        })
        .collect()
}

fn workload() -> Vec<Vec<Envelope<Msg>>> {
    (0..SENDERS).map(gen_sender).collect()
}

/// The pre-PR path: each sender encodes envelopes one by one (full 12-byte
/// headers) into a fresh buffer; the receiver decodes every stream, funnels
/// envelopes into per-destination inboxes, and sorts each inbox globally.
fn legacy_superstep(inputs: &[Vec<Envelope<Msg>>]) -> BTreeMap<SubgraphId, Vec<Envelope<Msg>>> {
    let frames: Vec<(u32, bytes::Bytes)> = inputs
        .iter()
        .map(|msgs| legacy::encode_envelopes(msgs))
        .collect();
    let mut inbox: BTreeMap<SubgraphId, Vec<Envelope<Msg>>> = BTreeMap::new();
    for (count, mut bytes) in frames {
        for e in legacy::decode_envelopes::<Msg>(count, &mut bytes).expect("bench frame decodes") {
            inbox.entry(e.to).or_default().push(e);
        }
    }
    for msgs in inbox.values_mut() {
        sort_envelopes(msgs);
    }
    inbox
}

/// The new path: optional sender-side combine, one `MessageBatch` frame per
/// sender encoded into a pooled buffer, receiver decodes per-destination
/// runs and k-way merges them; buffers recycle through the pool.
fn batched_superstep(
    inputs: Vec<Vec<Envelope<Msg>>>,
    pool: &mut BufferPool,
    combine: bool,
) -> BTreeMap<SubgraphId, Vec<Envelope<Msg>>> {
    let combiner = SsspCombiner;
    let frames: Vec<bytes::Bytes> = inputs
        .into_iter()
        .map(|mut msgs| {
            if combine {
                msgs = combine_envelopes(&combiner, msgs);
            }
            let mut batch = MessageBatch::new();
            for e in msgs {
                batch.push(e);
            }
            let mut buf = pool.get();
            batch.encode(&mut buf);
            buf.freeze()
        })
        .collect();
    let mut staged: BTreeMap<SubgraphId, Vec<Vec<Envelope<Msg>>>> = BTreeMap::new();
    for mut bytes in frames {
        for (to, run) in MessageBatch::<Msg>::decode(&mut bytes).expect("bench frame decodes") {
            staged.entry(to).or_default().push(run);
        }
        pool.reclaim(bytes);
    }
    staged
        .into_iter()
        .map(|(to, runs)| (to, merge_sorted_runs(runs)))
        .collect()
}

fn bench_messaging(c: &mut Criterion) {
    let inputs = workload();

    // Delivery equivalence (uncombined): the batched pipeline must produce
    // the exact envelope sequences of the legacy reference.
    {
        let mut pool = BufferPool::new();
        let legacy_out = legacy_superstep(&inputs);
        let batched_out = batched_superstep(inputs.clone(), &mut pool, false);
        assert_eq!(
            legacy_out, batched_out,
            "batched path diverged from reference"
        );
    }

    c.bench_function("messaging_legacy_8x4096", |b| {
        b.iter(|| legacy_superstep(black_box(&inputs)))
    });

    let mut pool = BufferPool::new();
    c.bench_function("messaging_batched_8x4096", |b| {
        b.iter_batched(
            || inputs.clone(),
            |msgs| batched_superstep(msgs, &mut pool, false),
            BatchSize::SmallInput,
        )
    });

    let mut pool = BufferPool::new();
    c.bench_function("messaging_batched_combined_8x4096", |b| {
        b.iter_batched(
            || inputs.clone(),
            |msgs| batched_superstep(msgs, &mut pool, true),
            BatchSize::SmallInput,
        )
    });

    assert_speedup(&inputs);
}

/// Same-run acceptance check: combiner-enabled batched path ≥2× the legacy
/// reference (median of interleaved samples, so CPU-frequency drift hits
/// both sides equally).
fn assert_speedup(inputs: &[Vec<Envelope<Msg>>]) {
    const ROUNDS: usize = 15;
    let mut pool = BufferPool::new();
    // Warm both paths (and the pool) before sampling.
    black_box(legacy_superstep(inputs));
    black_box(batched_superstep(inputs.to_vec(), &mut pool, true));

    let mut legacy_ns = Vec::with_capacity(ROUNDS);
    let mut batched_ns = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        black_box(legacy_superstep(inputs));
        legacy_ns.push(t0.elapsed().as_nanos() as u64);

        let cloned = inputs.to_vec();
        let t1 = Instant::now();
        black_box(batched_superstep(cloned, &mut pool, true));
        batched_ns.push(t1.elapsed().as_nanos() as u64);
    }
    legacy_ns.sort_unstable();
    batched_ns.sort_unstable();
    let legacy_med = legacy_ns[ROUNDS / 2];
    let batched_med = batched_ns[ROUNDS / 2];
    let speedup = legacy_med as f64 / batched_med as f64;
    println!(
        "messaging speedup (combiner-enabled batched vs legacy): {speedup:.2}x \
         (legacy {legacy_med} ns, batched {batched_med} ns)"
    );
    assert!(
        speedup >= 2.0,
        "batched+combined message path must be ≥2x the legacy path, got {speedup:.2}x"
    );
}

criterion_group!(
    name = micro_messaging;
    config = Criterion::default().sample_size(12);
    targets = bench_messaging
);
criterion_main!(micro_messaging);
