//! F6 — Fig. 6: time per timestep for (a) TDSP on CARN and (b) MEME on
//! WIKI, for 3/6/9 partitions.
//!
//! Paper shape to reproduce:
//! * spikes every 10th timestep — GoFS slice loading (temporal packing of
//!   10), visible here as real disk reads in the `io` column;
//! * the 3-partition series sits above 6 and 9, while 6 ≈ 9 (scaling
//!   saturates);
//! * (the paper's spikes at timesteps 20/40 are JVM `System.gc()` artifacts
//!   — not applicable in Rust, documented in EXPERIMENTS.md).
//!
//! Set `TEMPOGRAPH_TRACE=1` to export each run as a Chrome trace-event
//! JSON (Perfetto-loadable) under the system temp dir. Set
//! `TEMPOGRAPH_FAULTS=<seed>` to additionally inject a deterministic
//! crash-and-recover schedule (checkpoints every 10 timesteps).

use tempograph_algos::{MemeTracking, Tdsp};
use tempograph_bench::*;
use tempograph_core::VertexIdx;
use tempograph_engine::{run_job, InstanceSource, JobConfig, JobResult};
use tempograph_gen::{DatasetPreset, LATENCY_ATTR, TWEETS_ATTR};

fn series(result: &JobResult) -> (Vec<f64>, Vec<u64>) {
    let virtuals = (0..result.timesteps_run)
        .map(|t| virtual_timestep_with_barriers(result, t) * 1e3)
        .collect();
    let loads = (0..result.timesteps_run)
        .map(|t| result.metrics[t].iter().map(|m| m.slice_loads).sum())
        .collect();
    (virtuals, loads)
}

fn print_series(tag: &str, per_k: &[(usize, Vec<f64>, Vec<u64>)]) {
    println!("\n  {tag} — virtual ms per timestep (slice loads in parentheses):");
    let steps = per_k.iter().map(|(_, v, _)| v.len()).max().unwrap_or(0);
    let mut rows = Vec::new();
    for t in 0..steps {
        let mut row = vec![t.to_string()];
        for (_, v, loads) in per_k {
            row.push(match v.get(t) {
                Some(ms) => format!("{ms:.2} ({})", loads.get(t).copied().unwrap_or(0)),
                None => "-".to_string(),
            });
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("t".to_string())
        .chain(per_k.iter().map(|(k, _, _)| format!("{k} partitions")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&header_refs, &rows);
}

/// Apply the `TEMPOGRAPH_TRACE` opt-in to a job config.
fn maybe_traced<M>(config: JobConfig<M>) -> JobConfig<M> {
    match trace_config() {
        Some(tc) => config.with_trace(tc),
        None => config,
    }
}

/// Export a traced run's Chrome JSON next to the other bench artifacts.
fn maybe_export(tag: &str, k: usize, result: &JobResult) {
    if let Some(trace) = &result.trace {
        let path = std::env::temp_dir().join(format!("tempograph-{tag}-k{k}.trace.json"));
        write_trace(trace, path);
    }
}

fn main() {
    banner(
        "F6",
        "time per timestep: (a) TDSP on CARN, (b) MEME on WIKI",
    );
    let ks = [3usize, 6, 9];

    // (a) TDSP on CARN.
    {
        let t = template(DatasetPreset::Carn);
        let road = road_collection(t.clone());
        let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
        let mut per_k = Vec::new();
        for &k in &ks {
            let pg = partitioned(&t, k);
            let dir = stage_gofs(&format!("f6a-{k}"), &pg, &road, PACKING, BINNING);
            let result = run_job(
                &pg,
                &InstanceSource::Gofs(dir.clone()),
                Tdsp::factory(VertexIdx(0), lat_col),
                maybe_faulted(
                    maybe_traced(
                        JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS),
                    ),
                    "f6a",
                    k,
                    TIMESTEPS,
                ),
            );
            cleanup(&dir);
            maybe_export("f6a-tdsp-carn", k, &result);
            let (v, l) = series(&result);
            per_k.push((k, v, l));
        }
        print_series("(a) TDSP on CARN", &per_k);
    }

    // (b) MEME on WIKI.
    {
        let t = template(DatasetPreset::Wiki);
        let tweets = tweet_collection(t.clone(), DatasetPreset::Wiki);
        let tw_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
        let mut per_k = Vec::new();
        for &k in &ks {
            let pg = partitioned(&t, k);
            let dir = stage_gofs(&format!("f6b-{k}"), &pg, &tweets, PACKING, BINNING);
            let result = run_job(
                &pg,
                &InstanceSource::Gofs(dir.clone()),
                MemeTracking::factory(MEME, tw_col),
                maybe_faulted(
                    maybe_traced(JobConfig::sequentially_dependent(TIMESTEPS)),
                    "f6b",
                    k,
                    TIMESTEPS,
                ),
            );
            cleanup(&dir);
            maybe_export("f6b-meme-wiki", k, &result);
            let (v, l) = series(&result);
            per_k.push((k, v, l));
        }
        print_series("(b) MEME on WIKI", &per_k);
    }

    println!(
        "\n  paper shape: slice-load spikes at every 10th timestep (temporal packing = 10); \
         3-partition series highest, 6 ≈ 9. The paper's GC spikes at t = 20/40 are JVM \
         artifacts with no Rust analogue."
    );
}
