//! F5a — Fig. 5a: total time for HASH / MEME / TDSP on CARN / WIKI over
//! 3 / 6 / 9 partitions, plus the §IV.B strong-scaling ratios.
//!
//! Paper shape to reproduce:
//! * TDSP and MEME scale strongly from 3 → 6 partitions (≈ 1.8× CARN,
//!   1.67–1.88× WIKI), with CARN scaling better to 9 (≈ 2.5× vs 1.9×);
//! * HASH scales worst (per-timestep compute is tiny, so synchronisation
//!   and merge overheads dominate);
//! * TDSP on WIKI is unexpectedly *fast* — it converges in ~4 timesteps
//!   (small world) vs ~47 for CARN, so it processes far fewer instances.
//!
//! Times are reported on the virtual (simulated-cluster) clock; see
//! `tempograph-bench` docs for why wall time cannot show scaling on a
//! single-core host.

use tempograph_algos::{HashtagAggregation, MemeTracking, Tdsp};
use tempograph_bench::*;
use tempograph_core::VertexIdx;
use tempograph_engine::{run_job, InstanceSource, JobConfig, JobResult};
use tempograph_gen::{DatasetPreset, LATENCY_ATTR, TWEETS_ATTR};

fn main() {
    banner("F5a", "total time per algorithm × graph × partitions");
    let ks = [3usize, 6, 9];
    let mut rows = Vec::new();
    let mut scaling_rows = Vec::new();

    for preset in [DatasetPreset::Carn, DatasetPreset::Wiki] {
        let t = template(preset);
        let road = road_collection(t.clone());
        let tweets = tweet_collection(t.clone(), preset);
        let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
        let tw_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();

        for algo in ["HASH", "MEME", "TDSP"] {
            let mut virtuals = Vec::new();
            for &k in &ks {
                let pg = partitioned(&t, k);
                let (coll, tag) = match algo {
                    "TDSP" => (road.clone(), "road"),
                    _ => (tweets.clone(), "tweets"),
                };
                let dir = stage_gofs(
                    &format!("f5a-{}-{}-{}-{}", preset.name(), algo, k, tag),
                    &pg,
                    &coll,
                    PACKING,
                    BINNING,
                );
                let src = InstanceSource::Gofs(dir.clone());
                let result: JobResult = match algo {
                    "HASH" => run_job(
                        &pg,
                        &src,
                        HashtagAggregation::factory(MEME, tw_col),
                        JobConfig::eventually_dependent(TIMESTEPS),
                    ),
                    "MEME" => run_job(
                        &pg,
                        &src,
                        MemeTracking::factory(MEME, tw_col),
                        JobConfig::sequentially_dependent(TIMESTEPS),
                    ),
                    _ => run_job(
                        &pg,
                        &src,
                        Tdsp::factory(VertexIdx(0), lat_col),
                        JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS),
                    ),
                };
                cleanup(&dir);
                let (wall, virt) = clocks(&result);
                virtuals.push(virt);
                rows.push(vec![
                    format!("{algo}: {}", preset.name()),
                    k.to_string(),
                    format!("{virt:.3}"),
                    format!("{wall:.3}"),
                    result.timesteps_run.to_string(),
                ]);
            }
            scaling_rows.push(vec![
                format!("{algo}: {}", preset.name()),
                format!("{:.2}x", virtuals[0] / virtuals[1]),
                format!("{:.2}x", virtuals[0] / virtuals[2]),
            ]);
        }
    }

    print_table(
        &[
            "experiment",
            "partitions",
            "virtual_s",
            "wall_s",
            "timesteps_run",
        ],
        &rows,
    );
    println!("\n  strong scaling (virtual clock):");
    print_table(&["experiment", "3->6", "3->9"], &scaling_rows);
    println!(
        "\n  paper shape: TDSP/MEME 3->6 ≈ 1.67–1.88x; CARN 3->9 ≈ 2.5x vs WIKI ≈ 1.9x; \
         HASH scales least; TDSP(WIKI) runs few timesteps (~4) vs TDSP(CARN) (~47)"
    );
}
