//! M1 — criterion microbenchmarks for the substrate layers: codec
//! encode/decode, multilevel partitioning, subgraph discovery, SIR
//! generation, and a full small TI-BSP job (engine overhead floor).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use tempograph_algos::MemeTracking;
use tempograph_bench::MEME;
use tempograph_core::Column;
use tempograph_engine::{run_job, InstanceSource, JobConfig};
use tempograph_gen::{generate_sir_tweets, road_network, RoadNetConfig, SirConfig, TWEETS_ATTR};
use tempograph_gofs::codec;
use tempograph_partition::{discover_subgraphs, MultilevelPartitioner, Partitioner};

fn bench_codec(c: &mut Criterion) {
    let col = Column::Double((0..10_000).map(|i| i as f64 * 0.5).collect());
    c.bench_function("codec_encode_f64_column_10k", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::new();
            codec::put_column(&mut buf, &col);
            buf
        })
    });
    let mut buf = bytes::BytesMut::new();
    codec::put_column(&mut buf, &col);
    let encoded = buf.freeze();
    c.bench_function("codec_decode_f64_column_10k", |b| {
        b.iter_batched(
            || encoded.clone(),
            |mut bytes| codec::get_column(&mut bytes).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_partitioner(c: &mut Criterion) {
    let t = road_network(&RoadNetConfig {
        width: 50,
        height: 50,
        ..Default::default()
    });
    c.bench_function("multilevel_partition_2500v_k6", |b| {
        b.iter(|| MultilevelPartitioner::default().partition(&t, 6))
    });
    let t = Arc::new(t);
    let part = MultilevelPartitioner::default().partition(&t, 6);
    c.bench_function("discover_subgraphs_2500v", |b| {
        b.iter_batched(
            || part.clone(),
            |p| discover_subgraphs(t.clone(), p),
            BatchSize::SmallInput,
        )
    });
}

fn bench_sir_generator(c: &mut Criterion) {
    let t = Arc::new(road_network(&RoadNetConfig {
        width: 30,
        height: 30,
        ..Default::default()
    }));
    c.bench_function("sir_generate_900v_20steps", |b| {
        b.iter(|| {
            generate_sir_tweets(
                t.clone(),
                &SirConfig {
                    timesteps: 20,
                    ..Default::default()
                },
            )
        })
    });
}

fn bench_engine_floor(c: &mut Criterion) {
    let t = Arc::new(road_network(&RoadNetConfig {
        width: 20,
        height: 20,
        ..Default::default()
    }));
    let coll = Arc::new(generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: 10,
            hit_prob: 0.3,
            ..Default::default()
        },
    ));
    let part = MultilevelPartitioner::default().partition(&t, 2);
    let pg = Arc::new(discover_subgraphs(t.clone(), part));
    let tw_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let src = InstanceSource::Memory(coll);
    c.bench_function("meme_400v_10steps_2parts", |b| {
        b.iter(|| {
            run_job(
                &pg,
                &src,
                MemeTracking::factory(MEME, tw_col),
                JobConfig::sequentially_dependent(10),
            )
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_codec, bench_partitioner, bench_sir_generator, bench_engine_floor
);
criterion_main!(micro);
