//! F5b — Fig. 5b: Giraph-style SSSP on one instance vs GoFFish TDSP on 50
//! instances vs GoFFish SSSP on one instance (6 partitions, both graphs).
//!
//! Paper shape to reproduce:
//! * vertex-centric (Giraph-like) SSSP on ONE unweighted instance is slower
//!   than the subgraph-centric engine running TDSP over FIFTY instances —
//!   the vertex-centric model pays one superstep per hop, catastrophic on
//!   CARN's diameter;
//! * GoFFish SSSP on one instance is ≈ 13× faster than GoFFish TDSP on 50
//!   (CARN), the cost of iterating timesteps;
//! * superstep counts: vertex-centric ≈ graph diameter; subgraph-centric ≈
//!   subgraph-graph diameter (a handful).

use tempograph_algos::{Sssp, Tdsp};
use tempograph_bench::*;
use tempograph_core::VertexIdx;
use tempograph_engine::{run_job, InstanceSource, JobConfig};
use tempograph_gen::{DatasetPreset, LATENCY_ATTR};
use tempograph_pregel::{run_pregel, SsspVertex};

fn main() {
    banner(
        "F5b",
        "Giraph SSSP 1x vs GoFFish TDSP 50x vs GoFFish SSSP 1x (6 partitions)",
    );
    let k = 6;
    let mut rows = Vec::new();

    for preset in [DatasetPreset::Carn, DatasetPreset::Wiki] {
        let t = template(preset);
        let road = road_collection(t.clone());
        let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
        let pg = partitioned(&t, k);

        // 1. Vertex-centric (Giraph-like) SSSP, one unweighted instance —
        //    the paper's upper-bound baseline ("degenerates to BFS").
        let start = std::time::Instant::now();
        let pregel = run_pregel(
            &t,
            pg.partitioning(),
            &SsspVertex {
                source: VertexIdx(0),
                latencies: None,
            },
            100_000,
        );
        let pregel_wall = start.elapsed().as_secs_f64();
        // Two deployment models for the baseline: a lean vertex-centric
        // engine (1 ms barriers, same substrate as ours) and Giraph as the
        // paper deployed it (Hadoop/YARN, ≈100 ms per superstep).
        let lean = pregel_virtual(&pregel.metrics, k, BARRIER_NS);
        let hadoop = pregel_virtual(&pregel.metrics, k, HADOOP_BARRIER_NS);
        rows.push(vec![
            format!("vertex-centric SSSP 1x (lean): {}", preset.name()),
            format!("{lean:.3}"),
            format!("{pregel_wall:.3}"),
            pregel.metrics.supersteps.to_string(),
            pregel.metrics.messages.to_string(),
        ]);
        rows.push(vec![
            format!("Giraph-on-Hadoop SSSP 1x (modelled): {}", preset.name()),
            format!("{hadoop:.3}"),
            "-".to_string(),
            pregel.metrics.supersteps.to_string(),
            pregel.metrics.messages.to_string(),
        ]);

        // 2. GoFFish TDSP over 50 instances.
        let dir = stage_gofs(
            &format!("f5b-tdsp-{}", preset.name()),
            &pg,
            &road,
            PACKING,
            BINNING,
        );
        let tdsp = run_job(
            &pg,
            &InstanceSource::Gofs(dir.clone()),
            Tdsp::factory(VertexIdx(0), lat_col),
            JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS),
        );
        cleanup(&dir);
        let (tdsp_wall, tdsp_virtual) = clocks(&tdsp);
        let tdsp_supersteps: u32 = tdsp
            .metrics
            .iter()
            .flatten()
            .map(|m| m.supersteps)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            format!("GoFFish TDSP 50x: {}", preset.name()),
            format!("{tdsp_virtual:.3}"),
            format!("{tdsp_wall:.3}"),
            format!("{} ts (max {} ss/ts)", tdsp.timesteps_run, tdsp_supersteps),
            tdsp.metrics
                .iter()
                .flatten()
                .map(|m| m.msgs_local + m.msgs_remote)
                .sum::<u64>()
                .to_string(),
        ]);

        // 3. GoFFish subgraph-centric SSSP, one unweighted instance.
        let sssp = run_job(
            &pg,
            &InstanceSource::Memory(road.clone()),
            Sssp::factory(VertexIdx(0), None),
            JobConfig::independent(1),
        );
        let (sssp_wall, sssp_virtual) = clocks(&sssp);
        rows.push(vec![
            format!("GoFFish SSSP 1x: {}", preset.name()),
            format!("{sssp_virtual:.3}"),
            format!("{sssp_wall:.3}"),
            sssp.metrics[0]
                .iter()
                .map(|m| m.supersteps)
                .max()
                .unwrap_or(0)
                .to_string(),
            sssp.metrics
                .iter()
                .flatten()
                .map(|m| m.msgs_local + m.msgs_remote)
                .sum::<u64>()
                .to_string(),
        ]);
    }
    print_table(
        &[
            "experiment",
            "virtual_s",
            "wall_s",
            "supersteps",
            "messages",
        ],
        &rows,
    );
    println!(
        "\n  paper shape: Giraph SSSP on ONE instance slower than GoFFish TDSP on FIFTY; \
         GoFFish SSSP 1x ≈ 13x faster than its TDSP 50x on CARN; \
         vertex-centric supersteps ≈ diameter (hundreds for CARN), subgraph-centric ≈ a handful"
    );
}
