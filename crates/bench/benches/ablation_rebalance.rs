//! A4 — ablation: subgraph rebalancing (the paper's §IV.D proposal).
//!
//! §IV.D observes skewed utilisation (Fig. 7b) and proposes moving small
//! subgraphs from busy to idle partitions. This ablation closes the loop:
//!
//! 1. run TDSP on CARN over 6 partitions and measure per-partition compute;
//! 2. feed the measurements to `suggest_rebalance`, which proposes moves
//!    (never a partition's dominant subgraph, per the paper);
//! 3. apply the plan, re-discover subgraphs, re-run, and compare the
//!    virtual makespan against the prediction.
//!
//! Expected outcome — and the experiment's point: close to **no improvement
//! (≈ 1.0×)**. The skew of Fig. 7b is *temporal*: the hot partition changes
//! from timestep to timestep as the frontier wave moves, so a single static
//! reassignment cannot flatten the per-superstep maxima that set the
//! makespan. This is quantitative support for the paper's actual proposal,
//! which is *dynamic* rebalancing ("partitions which are active at a given
//! timestep can pass some of their subgraphs to an idle partition").

use std::sync::Arc;
use tempograph_algos::{MemeTracking, Tdsp};
use tempograph_bench::*;
use tempograph_core::VertexIdx;
use tempograph_engine::{run_job, InstanceSource, JobConfig, JobResult};
use tempograph_gen::{DatasetPreset, LATENCY_ATTR, TWEETS_ATTR};
use tempograph_partition::{discover_subgraphs, suggest_rebalance, LdgPartitioner, Partitioner};

fn per_partition_compute(result: &JobResult) -> Vec<u64> {
    result
        .virtual_partition_breakdown()
        .iter()
        .map(|&(compute, _, _)| compute)
        .collect()
}

fn main() {
    banner("A4", "subgraph rebalancing ablation (6 partitions)");
    let k = 6;
    let mut rows = Vec::new();

    for (algo_name, preset) in [("TDSP", DatasetPreset::Carn), ("MEME", DatasetPreset::Wiki)] {
        let t = template(preset);
        let road = road_collection(t.clone());
        let tweets = tweet_collection(t.clone(), preset);
        let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
        let tw_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
        // Start from the LDG streaming partitioner: it leaves more (and
        // more numerous) small subgraphs and a skewed load — exactly the
        // "long tail of small subgraphs" §IV.D says are move candidates.
        let parts = LdgPartitioner.partition(&t, k);
        let pg = Arc::new(discover_subgraphs(t.clone(), parts));

        let run = |pg: &Arc<tempograph_partition::PartitionedGraph>| -> JobResult {
            match algo_name {
                "TDSP" => run_job(
                    pg,
                    &InstanceSource::Memory(road.clone()),
                    Tdsp::factory(VertexIdx(0), lat_col),
                    JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS),
                ),
                _ => run_job(
                    pg,
                    &InstanceSource::Memory(tweets.clone()),
                    MemeTracking::factory(MEME, tw_col),
                    JobConfig::sequentially_dependent(TIMESTEPS),
                ),
            }
        };

        // Baseline run → measure → plan → apply → re-run.
        let before = run(&pg);
        let costs = per_partition_compute(&before);
        let plan = suggest_rebalance(&pg, &costs, 8);
        let pg2 = Arc::new(discover_subgraphs(
            t.clone(),
            plan.apply(&pg)
                .expect("plan matches the graph it came from"),
        ));
        let after = run(&pg2);

        rows.push(vec![
            format!("{algo_name}: {}", preset.name()),
            plan.moves.len().to_string(),
            format!("{:.2}x", plan.predicted_speedup()),
            format!("{:.3}", virtual_with_barriers(&before)),
            format!("{:.3}", virtual_with_barriers(&after)),
            format!(
                "{:.2}x",
                virtual_with_barriers(&before) / virtual_with_barriers(&after).max(1e-12)
            ),
        ]);
    }
    print_table(
        &[
            "experiment",
            "moves",
            "predicted",
            "before_virtual_s",
            "after_virtual_s",
            "achieved",
        ],
        &rows,
    );
    println!(
        "\n  expected: ≈1.0x — whole-run static moves cannot flatten *temporal* skew \
         (the hot partition changes per timestep), quantifying why §IV.D proposes \
         dynamic, per-timestep rebalancing"
    );
}
