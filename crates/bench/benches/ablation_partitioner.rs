//! A3 — ablation: partitioner quality → runtime.
//!
//! The paper relies on METIS for low edge cuts (its WIKI scaling collapse
//! is attributed to cut growth). This ablation runs MEME on both graphs
//! under three partitioners — hash (Pregel default), LDG streaming, and
//! our METIS-like multilevel — and reports cut %, remote traffic and
//! runtime.
//!
//! Expected: runtime and remote messages track edge cut; multilevel ≪ LDG
//! ≪ hash on CARN, with a smaller (but same-ordered) gap on WIKI.

use std::sync::Arc;
use tempograph_algos::MemeTracking;
use tempograph_bench::*;
use tempograph_engine::{run_job, InstanceSource, JobConfig};
use tempograph_gen::{DatasetPreset, TWEETS_ATTR};
use tempograph_partition::{
    cut_fraction, discover_subgraphs, HashPartitioner, LdgPartitioner, MultilevelPartitioner,
    Partitioner,
};

fn main() {
    banner("A3", "partitioner ablation (MEME, 6 partitions)");
    let k = 6;
    let mut rows = Vec::new();

    for preset in [DatasetPreset::Carn, DatasetPreset::Wiki] {
        let t = template(preset);
        let tweets = tweet_collection(t.clone(), preset);
        let tw_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
        let partitioners: Vec<(&str, Box<dyn Partitioner>)> = vec![
            ("hash", Box::new(HashPartitioner)),
            ("ldg", Box::new(LdgPartitioner)),
            ("multilevel", Box::new(MultilevelPartitioner::default())),
        ];
        for (name, p) in partitioners {
            let part = p.partition(&t, k);
            let cut = 100.0 * cut_fraction(&t, &part);
            let pg = Arc::new(discover_subgraphs(t.clone(), part));
            let n_subgraphs = pg.subgraphs().len();
            let result = run_job(
                &pg,
                &InstanceSource::Memory(tweets.clone()),
                MemeTracking::factory(MEME, tw_col),
                JobConfig::sequentially_dependent(TIMESTEPS),
            );
            let remote: u64 = result.metrics.iter().flatten().map(|m| m.msgs_remote).sum();
            let bytes: u64 = result
                .metrics
                .iter()
                .flatten()
                .map(|m| m.bytes_remote)
                .sum();
            rows.push(vec![
                format!("{}: {name}", preset.name()),
                format!("{cut:.3}%"),
                n_subgraphs.to_string(),
                format!("{:.3}", virtual_with_barriers(&result)),
                remote.to_string(),
                bytes.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "experiment",
            "edge_cut",
            "subgraphs",
            "virtual_s",
            "remote_msgs",
            "remote_bytes",
        ],
        &rows,
    );
    println!("\n  expected: runtime and remote traffic track edge cut: multilevel < ldg < hash");
}
