//! T1 — the paper's §IV.A dataset table.
//!
//! Paper values (full-size SNAP graphs):
//!
//! | Graph | Vertices  | Edges     | Diameter |
//! |-------|-----------|-----------|----------|
//! | CARN  | 1,965,206 | 2,766,607 | 849      |
//! | WIKI  | 2,394,385 | 5,021,410 | 9        |
//!
//! Our generated analogues are scaled down (laptop-sized); what must
//! reproduce is the *contrast*: CARN has a huge diameter and uniform degree
//! ≈ 2.8, WIKI has a tiny diameter and power-law degrees with |E|/|V| ≈ 2.1.

use tempograph_bench::{banner, print_table, template};
use tempograph_gen::DatasetPreset;

fn main() {
    banner("T1", "dataset table (generated CARN/WIKI analogues)");
    let mut rows = Vec::new();
    for preset in [DatasetPreset::Carn, DatasetPreset::Wiki] {
        let t = template(preset);
        // Diameter over the undirected structure (double-sweep BFS bound).
        let diameter = t.approx_diameter();
        let avg_deg = 2.0 * t.num_edges() as f64 / t.num_vertices() as f64;
        // Degree skew: max degree / average degree.
        let max_deg = t.vertices().map(|v| t.degree(v)).max().unwrap_or(0);
        rows.push(vec![
            preset.name().to_string(),
            t.num_vertices().to_string(),
            t.num_edges().to_string(),
            diameter.to_string(),
            format!("{avg_deg:.2}"),
            max_deg.to_string(),
        ]);
    }
    print_table(
        &[
            "graph",
            "vertices",
            "edges",
            "diameter~",
            "avg_deg",
            "max_deg",
        ],
        &rows,
    );
    println!(
        "\n  paper (full SNAP graphs): CARN 1,965,206 V / 2,766,607 E / diam 849 ; \
         WIKI 2,394,385 V / 5,021,410 E / diam 9"
    );
    println!("  expected shape: CARN diameter ≫ WIKI diameter; WIKI max_deg ≫ CARN max_deg");
}
