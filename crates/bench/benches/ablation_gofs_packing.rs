//! A2 — ablation: GoFS temporal packing × subgraph binning.
//!
//! The paper fixes packing = 10 and binning = 5 "to leverage data locality
//! when incrementally loading time-series graphs" [18]. This ablation
//! sweeps both knobs for TDSP on CARN and reports total time, slice loads,
//! and bytes read.
//!
//! Expected: packing = 1 maximises slice count (one disk read per subgraph
//! bin per timestep); very large packing loads data for timesteps that may
//! never run. The paper's 10×5 sits in the flat middle of the curve.

use tempograph_algos::Tdsp;
use tempograph_bench::*;
use tempograph_core::VertexIdx;
use tempograph_engine::{run_job, InstanceSource, JobConfig};
use tempograph_gen::{DatasetPreset, LATENCY_ATTR};

fn main() {
    banner(
        "A2",
        "GoFS packing × binning sweep (TDSP on CARN, 6 partitions)",
    );
    let k = 6;
    let t = template(DatasetPreset::Carn);
    let road = road_collection(t.clone());
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let pg = partitioned(&t, k);

    let mut rows = Vec::new();
    for packing in [1usize, 5, 10, 25, 50] {
        for binning in [1usize, 5] {
            let dir = stage_gofs(
                &format!("a2-p{packing}-b{binning}"),
                &pg,
                &road,
                packing,
                binning,
            );
            let result = run_job(
                &pg,
                &InstanceSource::Gofs(dir.clone()),
                Tdsp::factory(VertexIdx(0), lat_col),
                JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS),
            );
            cleanup(&dir);
            let loads: u64 = result.metrics.iter().flatten().map(|m| m.slice_loads).sum();
            let io_ns: u64 = result.metrics.iter().flatten().map(|m| m.io_ns).sum();
            rows.push(vec![
                packing.to_string(),
                binning.to_string(),
                format!("{:.3}", virtual_with_barriers(&result)),
                loads.to_string(),
                format!("{:.3}", secs(io_ns)),
            ]);
        }
    }
    print_table(
        &["packing", "binning", "virtual_s", "slice_loads", "io_s"],
        &rows,
    );
    println!("\n  expected: slice loads fall as packing grows; paper's 10×5 in the flat middle");
}
