//! T2 — the paper's §IV.B edge-cut table.
//!
//! Paper values (METIS k-way, load factor 1.03):
//!
//! | Graph | 3 parts | 6 parts | 9 parts  |
//! |-------|---------|---------|----------|
//! | CARN  | 0.005 % | 0.012 % | 0.020 %  |
//! | WIKI  | 10.75 % | 17.19 % | 26.17 %  |
//!
//! Expected shape: CARN cuts are vanishingly small and grow slowly; WIKI
//! cuts are orders of magnitude larger and grow steeply with k.

use tempograph_bench::{banner, print_table, template};
use tempograph_gen::DatasetPreset;
use tempograph_partition::{balance, cut_fraction, MultilevelPartitioner, Partitioner};

fn main() {
    banner("T2", "% edges cut across partitions (multilevel k-way)");
    let paper = [
        ("CARN", [0.005, 0.012, 0.020]),
        ("WIKI", [10.750, 17.190, 26.170]),
    ];
    let mut rows = Vec::new();
    for (i, preset) in [DatasetPreset::Carn, DatasetPreset::Wiki]
        .iter()
        .enumerate()
    {
        let t = template(*preset);
        let ml = MultilevelPartitioner::default();
        let mut row = vec![preset.name().to_string()];
        for (j, k) in [3usize, 6, 9].iter().enumerate() {
            let p = ml.partition(&t, *k);
            let cut = 100.0 * cut_fraction(&t, &p);
            let bal = balance(&t, &p);
            row.push(format!(
                "{cut:.3}% (paper {:.3}%, bal {bal:.2})",
                paper[i].1[j]
            ));
        }
        rows.push(row);
    }
    print_table(
        &["graph", "3 partitions", "6 partitions", "9 partitions"],
        &rows,
    );
    println!("\n  expected shape: WIKI cut ≫ CARN cut; both grow with k, WIKI steeply");
}
