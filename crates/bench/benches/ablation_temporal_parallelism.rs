//! A1 — ablation: temporal parallelism for independent / eventually
//! dependent patterns.
//!
//! §IV.B: "there is the possibility of pleasingly parallelizing each
//! timestep before the merge. However, this is currently not exploited by
//! GoFFish." This ablation quantifies what GoFFish left on the table: the
//! same HASH and Top-N jobs run (1) with per-timestep barriers (GoFFish
//! fidelity mode) and (2) with the temporal-parallelism fast path, which
//! streams every (subgraph, instance) pair without barriers.
//!
//! Expected: the fast path wins in proportion to how barrier-bound the
//! barriered run is (HASH's per-timestep compute is tiny, so it gains the
//! most — consistent with the paper calling HASH the worst-scaling job).

use tempograph_algos::{HashtagAggregation, TopNActivity};
use tempograph_bench::*;
use tempograph_engine::{run_job, InstanceSource, JobConfig, JobResult, Pattern};
use tempograph_gen::{DatasetPreset, TWEETS_ATTR};

/// Virtual makespan for a barrier-free run: the slowest partition's total
/// work (no per-superstep max — there are no barriers to wait at).
fn barrier_free_virtual(result: &JobResult) -> f64 {
    let parts = result.metrics.first().map_or(0, |t| t.len());
    let per_partition: Vec<u64> = (0..parts)
        .map(|p| {
            result
                .metrics
                .iter()
                .map(|t| t[p].compute_ns + t[p].msg_ns + t[p].io_ns)
                .sum()
        })
        .collect();
    let merge: u64 = result
        .merge_metrics
        .iter()
        .map(|m| m.compute_ns + m.msg_ns)
        .max()
        .unwrap_or(0);
    secs(per_partition.into_iter().max().unwrap_or(0) + merge)
}

fn main() {
    banner(
        "A1",
        "temporal parallelism ablation (HASH + TopN, 6 partitions)",
    );
    let k = 6;
    let mut rows = Vec::new();

    for preset in [DatasetPreset::Carn, DatasetPreset::Wiki] {
        let t = template(preset);
        let tweets = tweet_collection(t.clone(), preset);
        let tw_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
        let pg = partitioned(&t, k);
        let src = InstanceSource::Memory(tweets);

        for (algo, pattern) in [
            ("HASH", Pattern::EventuallyDependent),
            ("TopN", Pattern::Independent),
        ] {
            let base_cfg = match pattern {
                Pattern::EventuallyDependent => JobConfig::eventually_dependent(TIMESTEPS),
                _ => JobConfig::independent(TIMESTEPS),
            };
            let run = |cfg: JobConfig<_>| -> JobResult {
                match algo {
                    "HASH" => run_job(&pg, &src, HashtagAggregation::factory(MEME, tw_col), cfg),
                    _ => unreachable!(),
                }
            };
            // One barriered run provides both models: its measured
            // per-partition work yields (a) the barriered makespan and (b)
            // the barrier-free makespan a temporally-parallel schedule
            // would achieve with the same work — comparing two separate
            // runs on a timesharing host would only measure noise. The
            // temporally-parallel execution path itself is verified for
            // result-equality in the test suite.
            let barriered = if algo == "HASH" {
                run(base_cfg)
            } else {
                run_job(
                    &pg,
                    &src,
                    TopNActivity::factory(5, tw_col),
                    JobConfig::independent(TIMESTEPS),
                )
            };
            let v_barriered = virtual_with_barriers(&barriered);
            let v_fast = barrier_free_virtual(&barriered);
            rows.push(vec![
                format!("{algo}: {}", preset.name()),
                format!("{v_barriered:.4}"),
                format!("{v_fast:.4}"),
                format!("{:.2}x", v_barriered / v_fast.max(1e-12)),
            ]);
        }
    }
    print_table(
        &[
            "experiment",
            "barriered_virtual_s",
            "temporal_parallel_virtual_s",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\n  expected: temporal parallelism helps most where per-timestep compute is tiny \
         (HASH) — the optimisation the paper notes GoFFish does not exploit"
    );
}
