//! F7 — Fig. 7: algorithm progress and per-partition utilisation on 6
//! partitions.
//!
//! * (a) vertices whose TDSP finalizes per timestep, per partition (CARN):
//!   a wave — the source partition finalizes early, distant partitions stay
//!   idle for many timesteps (the paper sees first finalizations as late as
//!   timestep 26);
//! * (b) compute / partition-overhead / sync-overhead fractions per
//!   partition for TDSP on CARN: partitions reached late idle at barriers,
//!   dropping to ≈ 30 % compute in the paper;
//! * (c) vertices newly coloured by MEME per timestep, per partition
//!   (WIKI): roughly uniform across time (random SIR seeds);
//! * (d) the same utilisation breakdown for MEME on WIKI.

use tempograph_algos::{MemeTracking, Tdsp};
use tempograph_bench::*;
use tempograph_core::VertexIdx;
use tempograph_engine::{run_job, InstanceSource, JobConfig, JobResult};
use tempograph_gen::{DatasetPreset, LATENCY_ATTR, TWEETS_ATTR};

fn print_progress(tag: &str, result: &JobResult, counter: &str, k: usize) {
    println!("\n  {tag} — new vertices per timestep per partition:");
    let rows: Vec<Vec<String>> = (0..result.timesteps_run)
        .map(|t| {
            let mut row = vec![t.to_string()];
            let per_p = result
                .counters
                .get(counter)
                .and_then(|c| c.get(t))
                .cloned()
                .unwrap_or_else(|| vec![0; k]);
            row.extend(per_p.iter().map(|v| v.to_string()));
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("t".to_string())
        .chain((0..k).map(|p| format!("P{p}")))
        .collect();
    let refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&refs, &rows);

    // First-activity summary (the paper's "as late as timestep 26").
    let first: Vec<String> = (0..k)
        .map(|p| {
            (0..result.timesteps_run)
                .find(|&t| result.counters.get(counter).map_or(0, |c| c[t][p]) > 0)
                .map_or("never".to_string(), |t| t.to_string())
        })
        .collect();
    println!("  first activity per partition: {first:?}");
}

fn print_utilization(tag: &str, result: &JobResult) {
    println!("\n  {tag} — virtual-clock time fractions per partition:");
    let breakdown = result.virtual_partition_breakdown();
    let rows: Vec<Vec<String>> = breakdown
        .iter()
        .enumerate()
        .map(|(p, &(compute, overhead, idle))| {
            let total = (compute + overhead + idle).max(1);
            vec![
                format!("P{p}"),
                format!("{:.1}%", 100.0 * compute as f64 / total as f64),
                format!("{:.1}%", 100.0 * overhead as f64 / total as f64),
                format!("{:.1}%", 100.0 * idle as f64 / total as f64),
            ]
        })
        .collect();
    print_table(
        &["partition", "compute", "partition O/H", "sync O/H (idle)"],
        &rows,
    );
}

fn main() {
    banner("F7", "progress & utilisation (6 partitions)");
    let k = 6;

    // (a) + (b): TDSP on CARN.
    {
        let t = template(DatasetPreset::Carn);
        let road = road_collection(t.clone());
        let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
        let pg = partitioned(&t, k);
        let dir = stage_gofs("f7-tdsp", &pg, &road, PACKING, BINNING);
        let result = run_job(
            &pg,
            &InstanceSource::Gofs(dir.clone()),
            Tdsp::factory(VertexIdx(0), lat_col),
            JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS),
        );
        cleanup(&dir);
        print_progress("(a) TDSP finalized, CARN", &result, Tdsp::FINALIZED, k);
        print_utilization("(b) TDSP on CARN", &result);
    }

    // (c) + (d): MEME on WIKI.
    {
        let t = template(DatasetPreset::Wiki);
        let tweets = tweet_collection(t.clone(), DatasetPreset::Wiki);
        let tw_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
        let pg = partitioned(&t, k);
        let dir = stage_gofs("f7-meme", &pg, &tweets, PACKING, BINNING);
        let result = run_job(
            &pg,
            &InstanceSource::Gofs(dir.clone()),
            MemeTracking::factory(MEME, tw_col),
            JobConfig::sequentially_dependent(TIMESTEPS),
        );
        cleanup(&dir);
        print_progress("(c) MEME coloured, WIKI", &result, MemeTracking::COLORED, k);
        print_utilization("(d) MEME on WIKI", &result);
    }

    println!(
        "\n  paper shape: (a) a finalization wave — some partitions first finalize very late; \
         (b) late partitions show low compute fraction (≈30% in the paper); \
         (c) roughly uniform colouring across timesteps; \
         (d) partitions with more memes show higher compute fraction"
    );
}
