//! `bench` — machine-readable bench reports and regression gating.
//!
//! ```text
//! bench report  [--out PATH]                 # default BENCH_tempograph.json
//! bench compare OLD NEW [--threshold FRAC]   # exit 2 on regressions
//! ```
//!
//! Exit codes: 0 clean, 1 usage/IO error, 2 regressions found.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use tempograph_bench::report::{
    build_report, compare_reports, telemetry_overhead_note, ALGOS, DEFAULT_THRESHOLD, KS,
};
use tempograph_metrics::json::Value;

const USAGE: &str = "usage: bench report [--out PATH]
       bench compare OLD NEW [--threshold FRAC]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench: {e}\n{USAGE}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[&str]) -> Result<ExitCode, String> {
    match args.first() {
        Some(&"report") => cmd_report(&args[1..]),
        Some(&"compare") => cmd_compare(&args[1..]),
        _ => Err("expected a subcommand".into()),
    }
}

fn cmd_report(args: &[&str]) -> Result<ExitCode, String> {
    let mut out = "BENCH_tempograph.json".to_string();
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--out" => {
                out = it.next().ok_or("--out needs a path")?.to_string();
            }
            other => return Err(format!("unknown report argument {other:?}")),
        }
    }
    println!(
        "bench report: {} x partitions {:?}, fixed fixtures",
        ALGOS.join("/"),
        KS
    );
    let report = build_report(&ALGOS, &KS);
    std::fs::write(&out, report.write_pretty()).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    println!("{}", telemetry_overhead_note());
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(args: &[&str]) -> Result<ExitCode, String> {
    let mut threshold = DEFAULT_THRESHOLD;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a fraction")?;
                threshold = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("bad threshold {v:?}"))?;
            }
            p => paths.push(p),
        }
    }
    let [old_path, new_path] = paths[..] else {
        return Err("compare needs exactly OLD and NEW paths".into());
    };
    let load = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        Value::parse(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let cmp = compare_reports(&load(old_path)?, &load(new_path)?, threshold)?;
    for note in &cmp.notes {
        println!("note: {note}");
    }
    if cmp.regressions.is_empty() {
        println!(
            "compare: OK — no time regressions beyond +{:.0}% (old {old_path}, new {new_path})",
            threshold * 100.0
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for r in &cmp.regressions {
            println!("{}", r.describe());
        }
        println!(
            "compare: FAIL — {} regression(s) beyond +{:.0}%",
            cmp.regressions.len(),
            threshold * 100.0
        );
        Ok(ExitCode::from(2))
    }
}
