//! Machine-readable bench reports and regression gating.
//!
//! `bench report` runs the paper's three algorithms (HASH / MEME / TDSP)
//! over 3 and 6 partitions on **fixed-size, fixed-seed** fixtures
//! (deliberately independent of `TEMPOGRAPH_SCALE`, so two reports from
//! different checkouts describe the same workload) and folds each run's
//! metrics registry into one canonical JSON document,
//! `BENCH_tempograph.json`.
//!
//! `bench compare OLD NEW` re-reads two such documents and gates on
//! regressions: any top-level `*_ns` field that grew beyond the threshold
//! (default +50 %) *and* beyond an absolute noise floor of 25 ms is fatal
//! (process exit 2). Count-like fields (messages, supersteps, slice
//! loads…) are reported as informational diffs only — they are expected
//! to be deterministic, so any drift is worth a look but should not fail
//! CI on its own.

use std::sync::Arc;
use tempograph_algos::{HashtagAggregation, MemeTracking, Tdsp};
use tempograph_core::{GraphTemplate, TimeSeriesCollection, VertexIdx};
use tempograph_engine::{run_job, InstanceSource, JobConfig, JobResult, TraceConfig};
use tempograph_gen::{
    generate_road_latencies, generate_sir_tweets, DatasetPreset, RoadLatencyConfig, SirConfig,
    LATENCY_ATTR, TWEETS_ATTR,
};
use tempograph_metrics::json::Value;
use tempograph_metrics::{Histogram, Metric, Snapshot};

use crate::{cleanup, partitioned, secs, stage_gofs, BINNING, MEME, PACKING, PERIOD};

/// Schema tag stamped into every report; `compare` refuses mismatches.
pub const REPORT_SCHEMA: &str = "tempograph-bench/v1";

/// Timesteps per fixture run — enough for every algorithm to do real
/// inter-timestep work (MEME's coloring, TDSP's frontier) while keeping
/// the whole 6-entry matrix in CI budget.
pub const REPORT_TIMESTEPS: usize = 12;

/// Fixture scale: ≈ 3 000 vertices of the CARN-like road analogue —
/// large enough that per-cell wall time sits in the tens-of-milliseconds
/// range, where scheduler jitter is small relative to the gate threshold.
pub const REPORT_SCALE: f64 = 0.3;

/// Default fatal-growth threshold for `compare` (+50 %).
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// Absolute slack under which a `*_ns` growth is never fatal: on a
/// single-host (often single-core) CI box, scheduler timesharing moves
/// millisecond-scale figures by large ratios run to run; only growth
/// that is big in *both* relative and absolute terms should gate.
pub const NOISE_FLOOR_NS: u64 = 25_000_000;

/// The full report matrix.
pub const ALGOS: [&str; 3] = ["HASH", "MEME", "TDSP"];

/// Partition counts of the report matrix (the paper's 3 → 6 scaling step).
pub const KS: [usize; 2] = [3, 6];

/// The fixed fixture graph (never reads `TEMPOGRAPH_SCALE`).
fn fixture_template() -> Arc<GraphTemplate> {
    Arc::new(DatasetPreset::Carn.template(REPORT_SCALE))
}

/// Fixed-seed SIR tweet stream for HASH and MEME.
fn fixture_tweets(t: &Arc<GraphTemplate>) -> Arc<TimeSeriesCollection> {
    Arc::new(generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: REPORT_TIMESTEPS,
            start_time: 0,
            period: PERIOD,
            meme: MEME.to_string(),
            hit_prob: 0.3,
            initial_infected: 8,
            infectious_steps: 4,
            background_tags: vec!["#cats".into(), "#news".into()],
            background_rate: 0.005,
            seed: 0xBE4C,
        },
    ))
}

/// Fixed-seed road-latency stream for TDSP.
fn fixture_road(t: &Arc<GraphTemplate>) -> Arc<TimeSeriesCollection> {
    Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: REPORT_TIMESTEPS,
            start_time: 0,
            period: PERIOD,
            min_latency: 5.0,
            max_latency: 180.0,
            seed: 0x0D05E,
        },
    ))
}

/// Run one matrix cell with the metrics registry armed.
fn run_cell(
    algo: &str,
    k: usize,
    t: &Arc<GraphTemplate>,
    tweets: &Arc<TimeSeriesCollection>,
    road: &Arc<TimeSeriesCollection>,
) -> JobResult {
    let tw_col = t
        .vertex_schema()
        .index_of(TWEETS_ATTR)
        .expect("fixture has tweets attr");
    let lat_col = t
        .edge_schema()
        .index_of(LATENCY_ATTR)
        .expect("fixture has latency attr");
    let pg = partitioned(t, k);
    let coll = if algo == "TDSP" { road } else { tweets };
    let dir = stage_gofs(&format!("report-{algo}-k{k}"), &pg, coll, PACKING, BINNING);
    let src = InstanceSource::Gofs(dir.clone());
    let result = match algo {
        "HASH" => run_job(
            &pg,
            &src,
            HashtagAggregation::factory(MEME, tw_col),
            JobConfig::eventually_dependent(REPORT_TIMESTEPS).with_metrics(),
        ),
        "MEME" => run_job(
            &pg,
            &src,
            MemeTracking::factory(MEME, tw_col),
            JobConfig::sequentially_dependent(REPORT_TIMESTEPS).with_metrics(),
        ),
        "TDSP" => run_job(
            &pg,
            &src,
            Tdsp::factory(VertexIdx(0), lat_col),
            JobConfig::sequentially_dependent(REPORT_TIMESTEPS)
                .while_active(REPORT_TIMESTEPS)
                .with_metrics(),
        ),
        other => panic!("unknown algorithm {other:?}"),
    };
    cleanup(&dir);
    result
}

fn histogram_of<'a>(snap: &'a Snapshot, name: &str) -> Option<&'a Histogram> {
    match snap.get(name, &[])? {
        Metric::Histogram(h) => Some(h),
        _ => None,
    }
}

/// Quantile digest of a latency histogram. Keys deliberately do **not**
/// end in `_ns`: quantiles of per-superstep latency are too noisy to gate
/// on; the aggregate `*_ns_total` counters above them are the fatal ones.
fn quantile_obj(h: &Histogram) -> Value {
    Value::Obj(vec![
        ("count".into(), Value::u64(h.count())),
        ("sum".into(), Value::u64(h.sum())),
        ("p50".into(), Value::u64(h.quantile(0.5))),
        ("p95".into(), Value::u64(h.quantile(0.95))),
        ("p99".into(), Value::u64(h.quantile(0.99))),
        ("max".into(), Value::u64(h.max())),
    ])
}

/// One report entry: flat `*_ns` aggregates (gated), flat counts
/// (informational), quantile digests, and the full embedded snapshot.
fn entry_value(algo: &str, k: usize, result: &JobResult) -> Value {
    let snap = result
        .registry
        .as_ref()
        .expect("cell ran with_metrics")
        .snapshot();
    let c = |name: &str| Value::u64(snap.counter_total(name));
    let mut fields: Vec<(String, Value)> = vec![
        ("algorithm".into(), Value::str(algo)),
        ("partitions".into(), Value::u64(k as u64)),
        (
            "timesteps_run".into(),
            Value::u64(result.timesteps_run as u64),
        ),
        ("wall_ns".into(), c("tempograph_wall_ns_total")),
        ("virtual_ns".into(), c("tempograph_virtual_ns_total")),
        ("compute_ns".into(), c("tempograph_compute_ns_total")),
        ("sync_ns".into(), c("tempograph_sync_ns_total")),
        ("msg_ns".into(), c("tempograph_msg_ns_total")),
        ("io_ns".into(), c("tempograph_io_ns_total")),
        ("supersteps".into(), c("tempograph_supersteps_total")),
        ("msgs_local".into(), c("tempograph_msgs_local_total")),
        ("msgs_remote".into(), c("tempograph_msgs_remote_total")),
        ("bytes_remote".into(), c("tempograph_bytes_remote_total")),
        ("msgs_combined".into(), c("tempograph_msgs_combined_total")),
        ("slice_loads".into(), c("tempograph_slice_loads_total")),
        ("send_retries".into(), c("tempograph_send_retries_total")),
        ("recoveries".into(), c("tempograph_recoveries_total")),
        (
            "emitted_values".into(),
            c("tempograph_emitted_values_total"),
        ),
    ];
    for (field, metric) in [
        (
            "superstep_compute_quantiles",
            "tempograph_superstep_compute_ns",
        ),
        ("barrier_wait_quantiles", "tempograph_barrier_wait_ns"),
        ("send_quantiles", "tempograph_send_ns"),
    ] {
        if let Some(h) = histogram_of(&snap, metric) {
            fields.push((field.into(), quantile_obj(h)));
        }
    }
    fields.push(("snapshot".into(), snap.to_value()));
    Value::Obj(fields)
}

/// Host fingerprint so two reports can be judged for comparability. No
/// timestamp: report generation must stay free of ambient clock reads.
fn env_value() -> Value {
    Value::Obj(vec![
        ("os".into(), Value::str(std::env::consts::OS)),
        ("arch".into(), Value::str(std::env::consts::ARCH)),
        (
            "cpus".into(),
            Value::u64(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            ),
        ),
        ("debug_build".into(), Value::Bool(cfg!(debug_assertions))),
        ("timesteps".into(), Value::u64(REPORT_TIMESTEPS as u64)),
        ("scale".into(), Value::f64(REPORT_SCALE)),
    ])
}

/// Run the `algos × ks` matrix and assemble the canonical report value.
/// Prints one progress line per cell.
pub fn build_report(algos: &[&str], ks: &[usize]) -> Value {
    let t = fixture_template();
    let tweets = fixture_tweets(&t);
    let road = fixture_road(&t);
    let mut entries = Vec::new();
    for &algo in algos {
        for &k in ks {
            let result = run_cell(algo, k, &t, &tweets, &road);
            println!(
                "  {algo} k={k}: wall {:.3}s, virtual {:.3}s, {} timesteps, {} recoveries",
                secs(result.total_wall_ns),
                secs(result.virtual_total_ns()),
                result.timesteps_run,
                result.recoveries,
            );
            entries.push(entry_value(algo, k, &result));
        }
    }
    Value::Obj(vec![
        ("schema".into(), Value::str(REPORT_SCHEMA)),
        ("env".into(), env_value()),
        ("entries".into(), Value::Arr(entries)),
    ])
}

/// Informational telemetry-overhead probe: one HASH/k3 cell fully dark
/// versus fully armed (metrics + attribution + tracing — everything the
/// telemetry plane ships over TCP). Printed beside the report but never
/// written into it: a single-run wall-clock ratio is far too noisy to
/// gate on a shared CI box, yet a large blow-up is worth a look.
pub fn telemetry_overhead_note() -> String {
    let t = fixture_template();
    let tweets = fixture_tweets(&t);
    let tw_col = t
        .vertex_schema()
        .index_of(TWEETS_ATTR)
        .expect("fixture has tweets attr");
    let pg = partitioned(&t, 3);
    let dir = stage_gofs("report-telemetry-probe", &pg, &tweets, PACKING, BINNING);
    let src = InstanceSource::Gofs(dir.clone());
    let dark = run_job(
        &pg,
        &src,
        HashtagAggregation::factory(MEME, tw_col),
        JobConfig::eventually_dependent(REPORT_TIMESTEPS),
    );
    let armed = run_job(
        &pg,
        &src,
        HashtagAggregation::factory(MEME, tw_col),
        JobConfig::eventually_dependent(REPORT_TIMESTEPS)
            .with_metrics()
            .with_attribution()
            .with_trace(TraceConfig::new()),
    );
    cleanup(&dir);
    let pct = if dark.total_wall_ns == 0 {
        f64::INFINITY
    } else {
        (armed.total_wall_ns as f64 / dark.total_wall_ns as f64 - 1.0) * 100.0
    };
    format!(
        "note: telemetry-enabled overhead (informational, not gated): HASH/k3 wall {:.3}s armed vs {:.3}s dark ({:+.1}%)",
        secs(armed.total_wall_ns),
        secs(dark.total_wall_ns),
        pct
    )
}

/// One fatal regression found by [`compare_reports`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Regression {
    /// `"HASH/k3"`-style entry identity.
    pub entry: String,
    /// The offending `*_ns` field.
    pub field: String,
    /// Old and new values, nanoseconds.
    pub old: u64,
    /// New value, nanoseconds.
    pub new: u64,
}

impl Regression {
    /// Human-readable one-liner.
    pub fn describe(&self) -> String {
        let pct = if self.old == 0 {
            f64::INFINITY
        } else {
            (self.new as f64 / self.old as f64 - 1.0) * 100.0
        };
        format!(
            "REGRESSION {}: {} {:.3}ms -> {:.3}ms (+{:.1}%)",
            self.entry,
            self.field,
            self.old as f64 / 1e6,
            self.new as f64 / 1e6,
            pct
        )
    }
}

/// Outcome of comparing two reports: fatal regressions plus informational
/// notes (count drifts, entries present on only one side).
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Time regressions beyond threshold + noise floor — CI-fatal.
    pub regressions: Vec<Regression>,
    /// Non-fatal observations worth a look.
    pub notes: Vec<String>,
}

fn entry_key(entry: &Value) -> Option<String> {
    let algo = entry.get("algorithm")?.as_str()?;
    let k = entry.get("partitions")?.as_u64()?;
    Some(format!("{algo}/k{k}"))
}

fn entries_by_key(report: &Value) -> Result<Vec<(String, &Value)>, String> {
    let schema = report
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "report has no schema tag".to_string())?;
    if schema != REPORT_SCHEMA {
        return Err(format!(
            "schema mismatch: expected {REPORT_SCHEMA:?}, got {schema:?}"
        ));
    }
    let entries = report
        .get("entries")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| "report has no entries array".to_string())?;
    let mut out = Vec::new();
    for e in entries {
        let key = entry_key(e).ok_or_else(|| "entry lacks algorithm/partitions".to_string())?;
        out.push((key, e));
    }
    Ok(out)
}

/// Compare two parsed reports. Every top-level numeric `*_ns` field of a
/// matched entry is gated: growth past `old × (1 + threshold)` **and**
/// past [`NOISE_FLOOR_NS`] is a [`Regression`]. Other numeric fields that
/// changed, and entries present on only one side, become notes.
pub fn compare_reports(old: &Value, new: &Value, threshold: f64) -> Result<Comparison, String> {
    let old_entries = entries_by_key(old)?;
    let new_entries = entries_by_key(new)?;
    let mut cmp = Comparison::default();

    for (key, old_entry) in &old_entries {
        let Some((_, new_entry)) = new_entries.iter().find(|(k, _)| k == key) else {
            cmp.notes
                .push(format!("entry {key} present only in old report"));
            continue;
        };
        let Value::Obj(new_fields) = new_entry else {
            continue;
        };
        for (field, new_val) in new_fields {
            let Some(new_num) = new_val.as_u64() else {
                continue;
            };
            let Some(old_num) = old_entry.get(field).and_then(|v| v.as_u64()) else {
                cmp.notes
                    .push(format!("{key}: new field {field} = {new_num}"));
                continue;
            };
            if field.ends_with("_ns") {
                let limit = (old_num as f64 * (1.0 + threshold)).round() as u64;
                if new_num > limit && new_num.saturating_sub(old_num) > NOISE_FLOOR_NS {
                    cmp.regressions.push(Regression {
                        entry: key.clone(),
                        field: field.clone(),
                        old: old_num,
                        new: new_num,
                    });
                }
            } else if new_num != old_num {
                cmp.notes
                    .push(format!("{key}: {field} {old_num} -> {new_num}"));
            }
        }
    }
    for (key, _) in &new_entries {
        if !old_entries.iter().any(|(k, _)| k == key) {
            cmp.notes
                .push(format!("entry {key} present only in new report"));
        }
    }
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(wall_ns: u64, msgs_remote: u64) -> Value {
        Value::Obj(vec![
            ("schema".into(), Value::str(REPORT_SCHEMA)),
            ("env".into(), Value::Obj(vec![])),
            (
                "entries".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("algorithm".into(), Value::str("HASH")),
                    ("partitions".into(), Value::u64(3)),
                    ("wall_ns".into(), Value::u64(wall_ns)),
                    ("msgs_remote".into(), Value::u64(msgs_remote)),
                ])]),
            ),
        ])
    }

    #[test]
    fn self_compare_is_clean() {
        let r = tiny_report(100_000_000, 42);
        let cmp = compare_reports(&r, &r, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.regressions.is_empty());
        assert!(cmp.notes.is_empty());
    }

    #[test]
    fn doctored_regression_detected() {
        let old = tiny_report(100_000_000, 42);
        let new = tiny_report(200_000_000, 42);
        let cmp = compare_reports(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert_eq!(cmp.regressions.len(), 1);
        let r = &cmp.regressions[0];
        assert_eq!(r.entry, "HASH/k3");
        assert_eq!(r.field, "wall_ns");
        assert_eq!((r.old, r.new), (100_000_000, 200_000_000));
        assert!(r.describe().contains("+100.0%"));
    }

    #[test]
    fn small_absolute_jitter_is_not_fatal() {
        // 9× growth, but the absolute delta is under the 25 ms noise floor.
        let old = tiny_report(2_000_000, 42);
        let new = tiny_report(18_000_000, 42);
        let cmp = compare_reports(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.regressions.is_empty());
    }

    #[test]
    fn growth_within_threshold_is_not_fatal() {
        let old = tiny_report(100_000_000, 42);
        let new = tiny_report(140_000_000, 42); // +40 % < +50 % threshold
        let cmp = compare_reports(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.regressions.is_empty());
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let old = tiny_report(200_000_000, 42);
        let new = tiny_report(50_000_000, 42);
        let cmp = compare_reports(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.regressions.is_empty());
    }

    #[test]
    fn count_drift_is_an_informational_note() {
        let old = tiny_report(100_000_000, 42);
        let new = tiny_report(10_000_000, 45);
        let cmp = compare_reports(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.regressions.is_empty());
        assert_eq!(cmp.notes.len(), 1);
        assert!(cmp.notes[0].contains("msgs_remote 42 -> 45"));
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let good = tiny_report(1, 1);
        let bad = Value::Obj(vec![("schema".into(), Value::str("other/v9"))]);
        assert!(compare_reports(&bad, &good, DEFAULT_THRESHOLD).is_err());
        assert!(compare_reports(&good, &bad, DEFAULT_THRESHOLD).is_err());
    }

    #[test]
    fn unmatched_entries_become_notes() {
        let old = tiny_report(1_000_000, 1);
        let new = Value::Obj(vec![
            ("schema".into(), Value::str(REPORT_SCHEMA)),
            (
                "entries".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("algorithm".into(), Value::str("MEME")),
                    ("partitions".into(), Value::u64(6)),
                ])]),
            ),
        ]);
        let cmp = compare_reports(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.regressions.is_empty());
        assert_eq!(cmp.notes.len(), 2);
    }

    #[test]
    fn real_single_cell_report_round_trips() {
        // One real HASH run at k=2: the entry must carry the gated time
        // fields and the embedded snapshot, and survive a JSON round trip.
        let report = build_report(&["HASH"], &[2]);
        let text = report.write_pretty();
        let back = Value::parse(&text).expect("report JSON parses");
        let entries = back.get("entries").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("algorithm").and_then(|v| v.as_str()), Some("HASH"));
        assert_eq!(e.get("partitions").and_then(|v| v.as_u64()), Some(2));
        for field in ["wall_ns", "compute_ns", "sync_ns", "msg_ns", "io_ns"] {
            assert!(e.get(field).and_then(|v| v.as_u64()).is_some(), "{field}");
        }
        assert!(e.get("supersteps").and_then(|v| v.as_u64()).unwrap() > 0);
        let digest = e.get("superstep_compute_quantiles").expect("quantiles");
        assert!(digest.get("count").and_then(|v| v.as_u64()).unwrap() > 0);
        let snap = e.get("snapshot").expect("embedded snapshot");
        Snapshot::from_value(snap).expect("embedded snapshot decodes");
        // A fresh report must self-compare clean.
        let cmp = compare_reports(&back, &back, DEFAULT_THRESHOLD).unwrap();
        assert!(cmp.regressions.is_empty());
    }
}
