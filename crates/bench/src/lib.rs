//! # tempograph-bench — shared harness for the paper-reproduction benches
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper's evaluation (§IV); see DESIGN.md's experiment index. This
//! library holds the shared plumbing: scaled dataset construction, GoFS
//! dataset staging, and plain-text table/series printers.
//!
//! ## Scale and timing methodology
//!
//! Set `TEMPOGRAPH_SCALE` (default 1.0 ⇒ CARN ≈ 10 k vertices, WIKI ≈ 12 k)
//! to grow or shrink every workload. The paper's 50-timestep setup is kept.
//!
//! Figures report two clocks:
//!
//! * **wall** — end-to-end wall time of the simulated cluster on this host;
//! * **virtual** — the makespan a real cluster would see, reconstructed
//!   from per-partition, per-superstep compute measurements and the BSP
//!   barrier structure ([`tempograph_engine::JobResult::virtual_total_ns`]).
//!   On a single-core host (like most CI sandboxes) worker threads
//!   timeshare one CPU, so wall time cannot exhibit strong scaling; the
//!   virtual clock is the faithful analogue of the paper's cluster
//!   wall-clock and is what the scaling tables quote.

#![forbid(unsafe_code)]

pub mod report;

use std::path::{Path, PathBuf};
use std::sync::Arc;
use tempograph_core::{GraphTemplate, TimeSeriesCollection};
use tempograph_engine::{FaultPlan, JobConfig, JobResult};
use tempograph_gen::{
    generate_road_latencies, generate_sir_tweets, DatasetPreset, RoadLatencyConfig, SirConfig,
};
use tempograph_gofs::store::write_dataset;
use tempograph_partition::{
    discover_subgraphs, MultilevelPartitioner, PartitionedGraph, Partitioner,
};
use tempograph_trace::{Trace, TraceConfig};

/// The paper's instance count.
pub const TIMESTEPS: usize = 50;

/// The paper's period δ (5 minutes, in seconds) — also the TDSP idling
/// quantum.
pub const PERIOD: i64 = 300;

/// The paper's GoFS settings: temporal packing of 10 …
pub const PACKING: usize = 10;

/// … and subgraph binning of 5 (§IV.A).
pub const BINNING: usize = 5;

/// The meme hashtag used by the tweet workloads.
pub const MEME: &str = "#meme";

/// Workload scale multiplier from `TEMPOGRAPH_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("TEMPOGRAPH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Tracing opt-in from `TEMPOGRAPH_TRACE` (unset/`0`/`off` ⇒ `None`).
///
/// * `1` / `full` — full trace, exported via [`write_trace`];
/// * `flight` or `flight:<cap>` — flight-recorder mode (bounded ring,
///   dumped to stderr only on worker panic or straggler barrier waits).
pub fn trace_config() -> Option<TraceConfig> {
    let v = std::env::var("TEMPOGRAPH_TRACE").ok()?;
    let v = v.trim().to_ascii_lowercase();
    match v.as_str() {
        "" | "0" | "off" | "false" => None,
        "flight" => Some(TraceConfig::new().flight_recorder(4096)),
        s if s.starts_with("flight:") => {
            let cap = s["flight:".len()..].parse().unwrap_or(4096);
            Some(TraceConfig::new().flight_recorder(cap))
        }
        _ => Some(TraceConfig::new()),
    }
}

/// Fault-injection opt-in from `TEMPOGRAPH_FAULTS` (unset/`0`/`off` ⇒
/// config unchanged). A numeric seed derives a deterministic
/// [`FaultPlan`] for the run's shape, arms checkpointing every 10
/// timesteps (matching the GoFS packing cadence) under the system temp
/// dir, and lets the benchmark crash and recover mid-run — a chaos mode
/// for eyeballing checkpoint/recovery overhead on the paper workloads.
/// The same seed injects the same failures on every run.
pub fn maybe_faulted<M>(
    config: JobConfig<M>,
    tag: &str,
    partitions: usize,
    timesteps: usize,
) -> JobConfig<M> {
    match FaultPlan::from_env(partitions as u16, timesteps) {
        Some(plan) => {
            let dir = std::env::temp_dir().join(format!("tempograph-{tag}-k{partitions}-ckpt"));
            eprintln!(
                "  faults: seed {} armed, checkpoints -> {}",
                plan.seed().unwrap_or(0),
                dir.display()
            );
            config.with_checkpoint(10, dir).with_faults(plan)
        }
        None => config,
    }
}

/// Write a trace as Chrome trace-event JSON (open with Perfetto / \
/// `chrome://tracing`) and print where it went plus a top-5 summary.
pub fn write_trace(trace: &Trace, path: impl AsRef<Path>) {
    let path = path.as_ref();
    match std::fs::write(path, trace.to_chrome_json()) {
        Ok(()) => println!(
            "  trace: {} events -> {}\n{}",
            trace.num_events(),
            path.display(),
            trace.summary(5)
        ),
        Err(e) => eprintln!("  trace: failed to write {}: {e}", path.display()),
    }
}

/// Generate a preset's template at the ambient scale.
pub fn template(preset: DatasetPreset) -> Arc<GraphTemplate> {
    Arc::new(preset.template(scale()))
}

/// The paper's road-latency workload: i.i.d. uniform latencies, 50 steps.
/// Latencies sit mostly below δ so the TDSP frontier advances every period.
pub fn road_collection(t: Arc<GraphTemplate>) -> Arc<TimeSeriesCollection> {
    // One latency distribution for both graphs, as in the paper. The mean
    // is calibrated so the TDSP frontier crosses the CARN analogue's
    // diameter (≈ 190·√scale) in ≈ 47 of the 50 instances, while WIKI's
    // ≈ 10-hop diameter falls in a handful — the paper's exact contrast
    // (47 vs 4 timesteps, §IV.B). Calibration: measured frontier speed is
    // ≈ 0.78·diameter·mean/δ timesteps, so mean ≈ 95 s/√scale.
    let mean = 95.0 / scale().sqrt();
    let max_latency = (2.0 * mean - 5.0).max(12.0);
    Arc::new(generate_road_latencies(
        t,
        &RoadLatencyConfig {
            timesteps: TIMESTEPS,
            start_time: 0,
            period: PERIOD,
            min_latency: 5.0,
            max_latency,
            seed: 0x0D05E,
        },
    ))
}

/// The paper's SIR tweet workload with the preset's hit probability
/// (30 % CARN / 2 % WIKI), tuned like the paper "to get a stable
/// propagation across 50 time steps".
pub fn tweet_collection(t: Arc<GraphTemplate>, preset: DatasetPreset) -> Arc<TimeSeriesCollection> {
    let n = t.num_vertices();
    Arc::new(generate_sir_tweets(
        t,
        &SirConfig {
            timesteps: TIMESTEPS,
            start_time: 0,
            period: PERIOD,
            meme: MEME.to_string(),
            hit_prob: preset.hit_prob(),
            initial_infected: (n / 500).max(4),
            infectious_steps: 4,
            background_tags: vec!["#cats".into(), "#news".into(), "#sports".into()],
            background_rate: 0.005,
            seed: 0x7EE7,
        },
    ))
}

/// Partition with the METIS-like multilevel partitioner and freeze
/// subgraphs.
pub fn partitioned(t: &Arc<GraphTemplate>, k: usize) -> Arc<PartitionedGraph> {
    let p = MultilevelPartitioner::default().partition(t, k);
    Arc::new(discover_subgraphs(t.clone(), p))
}

/// Stage a collection as an on-disk GoFS dataset and return its path.
/// Re-created on every call; callers should clean up via [`cleanup`].
pub fn stage_gofs(
    tag: &str,
    pg: &Arc<PartitionedGraph>,
    coll: &TimeSeriesCollection,
    packing: usize,
    binning: usize,
) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tempograph-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_dataset(&dir, pg.clone(), coll, packing, binning).expect("stage dataset");
    dir
}

/// Remove a staged dataset directory.
pub fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Seconds (f64) from nanoseconds.
pub fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Print a header line for a bench target.
pub fn banner(id: &str, what: &str) {
    println!("\n=== {id}: {what} ===");
    println!(
        "    scale={} ({}), timesteps={TIMESTEPS}, packing={PACKING}, binning={BINNING}",
        scale(),
        if cfg!(debug_assertions) {
            "DEBUG BUILD — use cargo bench / --release"
        } else {
            "release"
        }
    );
}

/// Print an aligned table: header + rows of equal arity.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("  {}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Modelled cost of one distributed BSP barrier on commodity 1 GbE
/// (paper's EC2 setup): a millisecond-scale rendezvous. A single-host
/// simulation cannot measure this, so the virtual clock charges it
/// explicitly per superstep.
pub const BARRIER_NS: u64 = 1_000_000;

/// Barrier cost of a Hadoop/YARN-era Giraph superstep (the paper deploys
/// Giraph v1.1 on Hadoop 2.0): ≈ 100 ms of per-superstep framework
/// overhead. Used for the "as-deployed Giraph" row of F5b.
pub const HADOOP_BARRIER_NS: u64 = 100_000_000;

/// Number of global barriers a run crossed: one per superstep plus one
/// per timestep boundary (EndOfTimestep), plus the merge supersteps.
pub fn barrier_count(result: &JobResult) -> u64 {
    let steps: u64 = (0..result.timesteps_run)
        .map(|t| {
            result.metrics[t]
                .iter()
                .map(|m| m.supersteps as u64)
                .max()
                .unwrap_or(0)
                + 1
        })
        .sum();
    let merge: u64 = result
        .merge_metrics
        .iter()
        .map(|m| m.supersteps as u64)
        .max()
        .unwrap_or(0);
    steps + merge
}

/// Simulated cluster makespan including modelled barrier latency, seconds.
pub fn virtual_with_barriers(result: &JobResult) -> f64 {
    secs(result.virtual_total_ns() + barrier_count(result) * BARRIER_NS)
}

/// Simulated makespan of one timestep including its barriers, seconds.
pub fn virtual_timestep_with_barriers(result: &JobResult, t: usize) -> f64 {
    let barriers = result.metrics[t]
        .iter()
        .map(|m| m.supersteps as u64)
        .max()
        .unwrap_or(0)
        + 1;
    secs(result.virtual_timestep_ns(t) + barriers * BARRIER_NS)
}

/// Simulated makespan of a vertex-centric (pregel) run: per-superstep
/// compute is assumed balanced across `k` hosts (the engine reports only
/// aggregate compute), plus one barrier per superstep at `barrier_ns`.
pub fn pregel_virtual(
    metrics: &tempograph_pregel::PregelMetrics,
    k: usize,
    barrier_ns: u64,
) -> f64 {
    secs(metrics.compute_ns / k as u64 + metrics.supersteps as u64 * barrier_ns)
}

/// `(wall seconds, virtual seconds incl. barriers)` of a run.
pub fn clocks(result: &JobResult) -> (f64, f64) {
    (secs(result.total_wall_ns), virtual_with_barriers(result))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_positive() {
        assert!(scale() > 0.0);
    }

    #[test]
    fn collections_have_expected_shape() {
        let t = Arc::new(DatasetPreset::Carn.template(0.02));
        let road = road_collection(t.clone());
        assert_eq!(road.len(), TIMESTEPS);
        assert_eq!(road.period(), PERIOD);
        let tweets = tweet_collection(t, DatasetPreset::Carn);
        assert_eq!(tweets.len(), TIMESTEPS);
    }

    #[test]
    fn trace_config_parses_env_forms() {
        // Single test owns the env var; no other test in this crate reads it.
        std::env::remove_var("TEMPOGRAPH_TRACE");
        assert!(trace_config().is_none());
        std::env::set_var("TEMPOGRAPH_TRACE", "0");
        assert!(trace_config().is_none());
        std::env::set_var("TEMPOGRAPH_TRACE", "1");
        assert!(trace_config().is_some());
        std::env::set_var("TEMPOGRAPH_TRACE", "flight:128");
        assert!(trace_config().is_some());
        std::env::remove_var("TEMPOGRAPH_TRACE");
    }

    #[test]
    fn maybe_faulted_parses_env_forms() {
        // Single test owns the env var; no other test in this crate reads it.
        let probe = || maybe_faulted(JobConfig::<u64>::independent(1), "test", 3, 10);
        std::env::remove_var("TEMPOGRAPH_FAULTS");
        assert!(probe().faults.is_none());
        std::env::set_var("TEMPOGRAPH_FAULTS", "off");
        assert!(probe().faults.is_none());
        std::env::set_var("TEMPOGRAPH_FAULTS", "42");
        let armed = probe();
        assert!(armed.faults.is_some());
        assert!(armed.checkpoint.is_some());
        std::env::remove_var("TEMPOGRAPH_FAULTS");
    }

    #[test]
    fn stage_and_cleanup_roundtrip() {
        let t = Arc::new(DatasetPreset::Carn.template(0.02));
        let coll = road_collection(t.clone());
        let pg = partitioned(&t, 2);
        let dir = stage_gofs("selftest", &pg, &coll, PACKING, BINNING);
        assert!(dir.join("meta.bin").exists());
        cleanup(&dir);
        assert!(!dir.exists());
    }
}
