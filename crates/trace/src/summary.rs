//! Plain-text top-N trace digest: the at-a-glance companion to the
//! Perfetto export.

use crate::trace::{SpanView, Trace};

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn top_n(mut spans: Vec<SpanView>, n: usize) -> Vec<SpanView> {
    spans.sort_by_key(|s| std::cmp::Reverse(s.dur_ns));
    spans.truncate(n);
    spans
}

fn span_line(s: &SpanView) -> String {
    let arg = match s.arg {
        Some((k, v)) => format!("  {k}={v}"),
        None => String::new(),
    };
    format!(
        "  track {:<3} {:>10.3} ms  @ {:>10.3} ms{arg}",
        s.track,
        ms(s.dur_ns),
        ms(s.start_ns)
    )
}

impl Trace {
    /// A plain-text digest: the `n` slowest supersteps, the `n` worst
    /// barrier waits, straggler incidents, and the GoFS cache hit rate.
    pub fn summary(&self, n: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== trace summary ({} tracks, {} events) ===\n",
            self.tracks.len(),
            self.num_events()
        ));

        out.push_str(&format!("slowest supersteps (top {n}):\n"));
        let slow = top_n(self.spans("superstep").collect(), n);
        if slow.is_empty() {
            out.push_str("  (no superstep spans)\n");
        }
        for s in &slow {
            out.push_str(&span_line(s));
            out.push('\n');
        }

        out.push_str(&format!("worst barrier waits (top {n}):\n"));
        let mut waits: Vec<SpanView> = self.spans("barrier.arrive").collect();
        waits.extend(self.spans("barrier.post"));
        let waits = top_n(waits, n);
        if waits.is_empty() {
            out.push_str("  (no barrier spans)\n");
        }
        for s in &waits {
            out.push_str(&span_line(s));
            out.push('\n');
        }

        let stragglers = self.instants("straggler");
        if !stragglers.is_empty() {
            out.push_str(&format!(
                "stragglers: {} barrier wait(s) exceeded the threshold\n",
                stragglers.len()
            ));
        }

        let hits = self.counter_final("gofs.cache_hits");
        let misses = self.counter_final("gofs.cache_misses");
        let bytes = self.counter_final("gofs.bytes_read");
        if hits + misses > 0 {
            out.push_str(&format!(
                "gofs cache: {hits} hits / {misses} misses ({:.1}% hit rate), \
                 {:.2} MiB read\n",
                100.0 * hits as f64 / (hits + misses) as f64,
                bytes as f64 / (1024.0 * 1024.0)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceEvent;
    use crate::trace::TraceTrack;

    fn span(name: &'static str, start: u64, dur: u64, arg: u64) -> TraceEvent {
        TraceEvent::Span {
            name,
            start_ns: start,
            dur_ns: dur,
            arg: Some(("superstep", arg)),
        }
    }

    #[test]
    fn summary_reports_slowest_and_cache_rate() {
        let tr = Trace {
            tracks: vec![TraceTrack {
                track: 0,
                name: "partition 0".into(),
                events: vec![
                    span("superstep", 0, 5_000_000, 0),
                    span("superstep", 5_000_000, 9_000_000, 1),
                    TraceEvent::Span {
                        name: "barrier.arrive",
                        start_ns: 100,
                        dur_ns: 2_000_000,
                        arg: None,
                    },
                    TraceEvent::Counter {
                        name: "gofs.cache_hits",
                        ts_ns: 1,
                        value: 9,
                    },
                    TraceEvent::Counter {
                        name: "gofs.cache_misses",
                        ts_ns: 1,
                        value: 1,
                    },
                    TraceEvent::Counter {
                        name: "gofs.bytes_read",
                        ts_ns: 1,
                        value: 2 * 1024 * 1024,
                    },
                ],
            }],
        };
        let text = tr.summary(1);
        assert!(text.contains("slowest supersteps"));
        assert!(text.contains("superstep=1"), "the 9 ms one wins: {text}");
        assert!(!text.contains("superstep=0"), "top-1 truncates");
        assert!(text.contains("90.0% hit rate"));
        assert!(text.contains("2.00 MiB read"));
    }

    #[test]
    fn summary_handles_empty_trace() {
        let text = Trace::default().summary(3);
        assert!(text.contains("(no superstep spans)"));
        assert!(text.contains("(no barrier spans)"));
        assert!(!text.contains("gofs cache"));
    }
}
