//! The assembled trace: per-track event streams with queries and
//! validation.

use crate::sink::{TraceEvent, TraceSink};

/// One track of events (one partition/worker, rendered as one "thread" in
/// Perfetto). Events are sorted by `(start, longest-first)` so nested spans
/// follow their parents.
#[derive(Clone, Debug)]
pub struct TraceTrack {
    /// Track id (the partition id).
    pub track: u32,
    /// Human-readable name (e.g. `"partition 3"`).
    pub name: String,
    /// Chronologically sorted events.
    pub events: Vec<TraceEvent>,
}

/// One instant event as returned by [`Trace::instants`]:
/// `(track, ts_ns, arg)`.
pub type InstantView = (u32, u64, Option<(&'static str, u64)>);

/// A flattened view of one span, returned by [`Trace::spans`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanView {
    /// Track the span was recorded on.
    pub track: u32,
    /// Span name.
    pub name: &'static str,
    /// Start, nanoseconds since the session epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Optional `(key, value)` argument.
    pub arg: Option<(&'static str, u64)>,
}

/// A drained, assembled trace — the session-level artefact a
/// [`crate::TraceSink`] feeds. Attached to the engine's `JobResult`;
/// export via [`Trace::to_chrome_json`] / [`Trace::summary`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Tracks in ascending track-id order.
    pub tracks: Vec<TraceTrack>,
}

fn sort_key(ev: &TraceEvent) -> (u64, std::cmp::Reverse<u64>) {
    match *ev {
        TraceEvent::Span {
            start_ns, dur_ns, ..
        } => (start_ns, std::cmp::Reverse(dur_ns)),
        _ => (ev.ts_ns(), std::cmp::Reverse(0)),
    }
}

impl Trace {
    /// Assemble a trace from drained sinks. Multiple sinks may share a
    /// track id (e.g. a worker and its GoFS loader record onto the same
    /// partition track); their events are merged and time-sorted. The
    /// track takes its name from the first sink seen with that id.
    pub fn from_sinks(named_sinks: Vec<(String, TraceSink)>) -> Self {
        let mut tracks: Vec<TraceTrack> = Vec::new();
        for (name, mut sink) in named_sinks {
            let id = sink.track();
            let events = sink.take_events();
            match tracks.iter_mut().find(|t| t.track == id) {
                Some(t) => t.events.extend(events),
                None => tracks.push(TraceTrack {
                    track: id,
                    name,
                    events,
                }),
            }
        }
        for t in &mut tracks {
            t.events.sort_by_key(sort_key);
        }
        tracks.sort_by_key(|t| t.track);
        Trace { tracks }
    }

    /// Total events across all tracks.
    pub fn num_events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// All spans named `name`, across tracks.
    pub fn spans<'a>(&'a self, name: &str) -> impl Iterator<Item = SpanView> + 'a {
        let name = name.to_string();
        self.tracks.iter().flat_map(move |t| {
            let name = name.clone();
            t.events.iter().filter_map(move |ev| match *ev {
                TraceEvent::Span {
                    name: n,
                    start_ns,
                    dur_ns,
                    arg,
                } if n == name => Some(SpanView {
                    track: t.track,
                    name: n,
                    start_ns,
                    dur_ns,
                    arg,
                }),
                _ => None,
            })
        })
    }

    /// Sum of the durations of all spans named `name` (all tracks).
    pub fn sum_spans(&self, name: &str) -> u64 {
        self.spans(name).map(|s| s.dur_ns).sum()
    }

    /// Sum of the durations of spans named `name` on one track.
    pub fn sum_spans_on(&self, track: u32, name: &str) -> u64 {
        self.spans(name)
            .filter(|s| s.track == track)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Number of spans named `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans(name).count()
    }

    /// The last sampled value of counter `name` on each track, summed — a
    /// cluster-wide final counter reading.
    pub fn counter_final(&self, name: &str) -> u64 {
        self.tracks
            .iter()
            .filter_map(|t| {
                t.events.iter().rev().find_map(|ev| match *ev {
                    TraceEvent::Counter { name: n, value, .. } if n == name => Some(value),
                    _ => None,
                })
            })
            .sum()
    }

    /// Instant events named `name`, as `(track, ts_ns, arg)` tuples.
    pub fn instants(&self, name: &str) -> Vec<InstantView> {
        let mut out = Vec::new();
        for t in &self.tracks {
            for ev in &t.events {
                if let TraceEvent::Instant {
                    name: n,
                    ts_ns,
                    arg,
                } = *ev
                {
                    if n == name {
                        out.push((t.track, ts_ns, arg));
                    }
                }
            }
        }
        out
    }

    /// Validate structural invariants: track ids are unique, events are
    /// time-sorted, spans on each track obey stack discipline (every
    /// span is fully contained in the enclosing one — the property that
    /// makes the Perfetto rendering a sensible flame chart), and counter
    /// samples are non-decreasing per `(track, name)` — every counter in
    /// the workspace records a cumulative lifetime total, so a regression
    /// means a producer sampled a resettable window by mistake.
    ///
    /// With the `deep-validate` feature, additionally runs an exhaustive
    /// pairwise check that no two spans on a track partially overlap.
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.tracks.iter().enumerate() {
            if self.tracks[..i].iter().any(|o| o.track == t.track) {
                return Err(format!("duplicate track id {}", t.track));
            }
            let mut last_key = (0u64, std::cmp::Reverse(u64::MAX));
            let mut stack: Vec<(u64, u64)> = Vec::new(); // (start, end)
            let mut counter_last: Vec<(&'static str, u64)> = Vec::new();
            for ev in &t.events {
                let key = sort_key(ev);
                if key < last_key {
                    return Err(format!(
                        "track {}: events not time-sorted at {:?}",
                        t.track, ev
                    ));
                }
                last_key = key;
                if let TraceEvent::Span {
                    name,
                    start_ns,
                    dur_ns,
                    ..
                } = *ev
                {
                    let end = start_ns + dur_ns;
                    while let Some(&(_, pend)) = stack.last() {
                        if start_ns >= pend {
                            stack.pop();
                        } else {
                            break;
                        }
                    }
                    if let Some(&(pstart, pend)) = stack.last() {
                        if !(start_ns >= pstart && end <= pend) {
                            return Err(format!(
                                "track {}: span {name:?} [{start_ns}, {end}) not contained \
                                 in enclosing span [{pstart}, {pend})",
                                t.track
                            ));
                        }
                    }
                    stack.push((start_ns, end));
                }
                if let TraceEvent::Counter { name, value, .. } = *ev {
                    match counter_last.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, last)) => {
                            if value < *last {
                                return Err(format!(
                                    "track {}: counter {name:?} regressed from {last} to {value}",
                                    t.track
                                ));
                            }
                            *last = value;
                        }
                        None => counter_last.push((name, value)),
                    }
                }
            }
            #[cfg(feature = "deep-validate")]
            deep_validate_track(t)?;
        }
        Ok(())
    }
}

/// Exhaustive O(n²) pairwise overlap check: any two spans on a track must
/// be disjoint or nested.
#[cfg(feature = "deep-validate")]
fn deep_validate_track(t: &TraceTrack) -> Result<(), String> {
    let spans: Vec<(u64, u64)> = t
        .events
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::Span {
                start_ns, dur_ns, ..
            } => Some((start_ns, start_ns + dur_ns)),
            _ => None,
        })
        .collect();
    for (i, &(s1, e1)) in spans.iter().enumerate() {
        for &(s2, e2) in &spans[i + 1..] {
            let disjoint = e1 <= s2 || e2 <= s1;
            let nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
            if !disjoint && !nested {
                return Err(format!(
                    "track {}: spans [{s1}, {e1}) and [{s2}, {e2}) partially overlap",
                    t.track
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceConfig;

    fn span(name: &'static str, start: u64, dur: u64) -> TraceEvent {
        TraceEvent::Span {
            name,
            start_ns: start,
            dur_ns: dur,
            arg: None,
        }
    }

    fn track(id: u32, events: Vec<TraceEvent>) -> TraceTrack {
        let mut events = events;
        events.sort_by_key(super::sort_key);
        TraceTrack {
            track: id,
            name: format!("partition {id}"),
            events,
        }
    }

    #[test]
    fn from_sinks_merges_same_track_and_sorts() {
        let _serial = crate::test_serial();
        let cfg = TraceConfig::new();
        let mut a = cfg.sink(0);
        let mut b = cfg.sink(0); // same track: worker + loader
        let mut c = cfg.sink(1);
        a.span_at("outer", 0, 100);
        b.span_at("inner", 10, 20);
        c.span_at("other", 5, 6);
        let trace = Trace::from_sinks(vec![
            ("partition 0".into(), a),
            ("partition 0 loader".into(), b),
            ("partition 1".into(), c),
        ]);
        assert_eq!(trace.tracks.len(), 2);
        assert_eq!(trace.tracks[0].track, 0);
        assert_eq!(trace.tracks[0].name, "partition 0");
        assert_eq!(trace.tracks[0].events.len(), 2);
        // Outer (longer) sorts before inner at later start.
        assert_eq!(trace.tracks[0].events[0].name(), "outer");
        assert!(trace.validate().is_ok());
        assert_eq!(trace.num_events(), 3);
    }

    #[test]
    fn queries_sum_count_and_counters() {
        let tr = Trace {
            tracks: vec![
                track(
                    0,
                    vec![
                        span("compute", 0, 10),
                        span("compute", 20, 5),
                        TraceEvent::Counter {
                            name: "msgs",
                            ts_ns: 1,
                            value: 3,
                        },
                        TraceEvent::Counter {
                            name: "msgs",
                            ts_ns: 30,
                            value: 9,
                        },
                    ],
                ),
                track(1, vec![span("compute", 0, 7)]),
            ],
        };
        assert_eq!(tr.sum_spans("compute"), 22);
        assert_eq!(tr.sum_spans_on(1, "compute"), 7);
        assert_eq!(tr.span_count("compute"), 3);
        assert_eq!(tr.counter_final("msgs"), 9, "last sample per track");
        assert_eq!(tr.counter_final("absent"), 0);
    }

    #[test]
    fn validate_rejects_partial_overlap_and_dup_tracks() {
        let bad = Trace {
            tracks: vec![track(0, vec![span("a", 0, 10), span("b", 5, 10)])],
        };
        assert!(bad.validate().is_err(), "partial overlap must fail");

        let nested = Trace {
            tracks: vec![track(
                0,
                vec![span("a", 0, 100), span("b", 10, 20), span("c", 12, 3)],
            )],
        };
        assert!(nested.validate().is_ok(), "proper nesting passes");

        let dup = Trace {
            tracks: vec![track(2, vec![]), track(2, vec![])],
        };
        assert!(dup.validate().is_err(), "duplicate track ids must fail");
    }

    #[test]
    fn validate_rejects_unbalanced_spans() {
        // A child that starts inside its parent but outlives it — the
        // shape an unbalanced begin/end pair produces.
        let dangling = Trace {
            tracks: vec![track(
                0,
                vec![span("parent", 0, 50), span("child", 40, 100)],
            )],
        };
        assert!(
            dangling.validate().is_err(),
            "child outliving parent must fail"
        );

        // Zero-duration spans are legal leaves anywhere inside a parent.
        let empty_leaf = Trace {
            tracks: vec![track(0, vec![span("parent", 0, 50), span("leaf", 25, 0)])],
        };
        assert!(empty_leaf.validate().is_ok());
    }

    #[test]
    fn validate_rejects_counter_regressions() {
        fn counter(name: &'static str, ts: u64, value: u64) -> TraceEvent {
            TraceEvent::Counter {
                name,
                ts_ns: ts,
                value,
            }
        }

        let monotone = Trace {
            tracks: vec![track(
                0,
                vec![
                    counter("msgs", 0, 3),
                    counter("msgs", 10, 3),
                    counter("msgs", 20, 9),
                ],
            )],
        };
        assert!(monotone.validate().is_ok(), "flat samples are fine");

        let regressing = Trace {
            tracks: vec![track(
                0,
                vec![counter("msgs", 0, 9), counter("msgs", 10, 3)],
            )],
        };
        let err = regressing.validate().unwrap_err();
        assert!(err.contains("regressed"), "got: {err}");

        // Independent names and independent tracks don't interfere.
        let independent = Trace {
            tracks: vec![
                track(0, vec![counter("a", 0, 9), counter("b", 10, 3)]),
                track(1, vec![counter("a", 0, 1)]),
            ],
        };
        assert!(independent.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_order_events() {
        // Build the track by hand (no sort) to simulate a stream whose
        // clock readings went backwards.
        let tr = Trace {
            tracks: vec![TraceTrack {
                track: 0,
                name: "partition 0".into(),
                events: vec![
                    TraceEvent::Instant {
                        name: "late",
                        ts_ns: 100,
                        arg: None,
                    },
                    TraceEvent::Instant {
                        name: "early",
                        ts_ns: 50,
                        arg: None,
                    },
                ],
            }],
        };
        let err = tr.validate().unwrap_err();
        assert!(err.contains("not time-sorted"), "got: {err}");
    }

    #[test]
    fn sibling_spans_after_pop_are_fine() {
        let tr = Trace {
            tracks: vec![track(
                0,
                vec![
                    span("ts", 0, 100),
                    span("ss", 0, 40),
                    span("ss", 40, 60),
                    span("compute", 41, 10),
                ],
            )],
        };
        assert!(tr.validate().is_ok());
    }
}
