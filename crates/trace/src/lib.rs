//! # tempograph-trace — structured tracing for the TI-BSP engine
//!
//! The paper's evaluation (§IV, Figs. 6–7) is an observability story:
//! per-timestep wall times, compute vs. partition vs. sync overhead,
//! straggler idling. This crate records those signals as *events* rather
//! than pre-aggregated sums, making the trace the ground truth from which
//! the engine's `TimestepMetrics` aggregates are derivable.
//!
//! Design constraints (and how they are met):
//!
//! * **Low overhead.** A [`TraceSink`] is owned by exactly one worker
//!   thread; recording an event is one monotonic clock read plus one `Vec`
//!   push — no locks, no allocation once the buffer is warm. Sinks are
//!   drained into a [`Trace`] only after the job finishes.
//! * **Cheap when off.** A global [`AtomicBool`] kill-switch
//!   ([`set_tracing_enabled`]) plus a per-sink `active` flag make the
//!   disabled path a branch on two booleans — a few nanoseconds. Jobs that
//!   never configure tracing get an *inert* sink whose record methods
//!   short-circuit immediately.
//! * **Dependency-free.** Only `std`.
//!
//! Three exports:
//!
//! 1. [`Trace::to_chrome_json`] — Chrome trace-event JSON, loadable in
//!    [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`, with
//!    partitions as "threads" and timesteps/supersteps/barriers/GoFS loads
//!    as nested spans;
//! 2. [`Trace::summary`] — a plain-text top-N digest (slowest supersteps,
//!    worst barrier waits, GoFS cache hit rate);
//! 3. the **flight recorder**: every sink keeps a bounded tail of recent
//!    events ([`TraceMode::FlightRecorder`] bounds the whole buffer) that
//!    is dumped to stderr when its worker thread panics or a barrier wait
//!    exceeds the configured straggler threshold.

#![forbid(unsafe_code)]

mod chrome;
mod clock;
mod sink;
mod summary;
mod trace;

pub use clock::Clock;
pub use sink::{SpanStart, TraceConfig, TraceEvent, TraceMode, TraceSink};
pub use trace::{SpanView, Trace, TraceTrack};

use std::sync::atomic::{AtomicBool, Ordering};

/// Global tracing kill-switch. Default: enabled (recording still requires a
/// sink created from a [`TraceConfig`], so untraced jobs pay nothing).
static TRACING_ENABLED: AtomicBool = AtomicBool::new(true);

/// Flip the global tracing kill-switch at runtime.
pub fn set_tracing_enabled(on: bool) {
    TRACING_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the global kill-switch currently allows recording.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING_ENABLED.load(Ordering::Relaxed)
}

/// Serialises unit tests that record events or toggle the global
/// kill-switch (tests run concurrently within one binary).
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
