//! Per-worker event recording: the hot path.

use crate::tracing_enabled;
use std::io::Write;
use std::time::Instant;

/// One recorded event. `Copy`-sized and allocation-free; names are
/// `&'static str` so the hot path never formats or clones strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A completed span (Chrome `ph: "X"`). Nested spans on one track must
    /// be properly contained in their parent.
    Span {
        /// Span name (e.g. `"compute"`, `"barrier.arrive"`).
        name: &'static str,
        /// Start, nanoseconds since the session epoch.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
        /// Optional `(key, value)` argument (e.g. `("superstep", 3)`).
        arg: Option<(&'static str, u64)>,
    },
    /// A point event (Chrome `ph: "i"`).
    Instant {
        /// Event name (e.g. `"straggler"`).
        name: &'static str,
        /// Timestamp, nanoseconds since the session epoch.
        ts_ns: u64,
        /// Optional `(key, value)` argument.
        arg: Option<(&'static str, u64)>,
    },
    /// A sampled counter value (Chrome `ph: "C"`).
    Counter {
        /// Counter name (e.g. `"gofs.bytes_read"`).
        name: &'static str,
        /// Sample timestamp, nanoseconds since the session epoch.
        ts_ns: u64,
        /// Sampled value.
        value: u64,
    },
}

impl TraceEvent {
    /// The event's (start) timestamp in nanoseconds since the epoch.
    pub fn ts_ns(&self) -> u64 {
        match *self {
            TraceEvent::Span { start_ns, .. } => start_ns,
            TraceEvent::Instant { ts_ns, .. } | TraceEvent::Counter { ts_ns, .. } => ts_ns,
        }
    }

    /// The event's name.
    pub fn name(&self) -> &'static str {
        match *self {
            TraceEvent::Span { name, .. }
            | TraceEvent::Instant { name, .. }
            | TraceEvent::Counter { name, .. } => name,
        }
    }
}

/// How a sink stores events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// Keep every event (full trace; memory grows with the run).
    Full,
    /// Keep only the most recent `ring_capacity` events — a bounded flight
    /// recorder for long production runs where a full trace is too heavy.
    FlightRecorder,
}

/// Session-wide tracing configuration, shared by every sink of one job.
///
/// Cloning is cheap; all sinks built from clones of one config share its
/// epoch, so their timestamps are directly comparable.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    epoch: Instant,
    /// Buffer policy (full trace vs. bounded flight recorder).
    pub mode: TraceMode,
    /// Events kept per sink in [`TraceMode::FlightRecorder`], and the
    /// maximum tail length of a stderr flight-recorder dump.
    pub ring_capacity: usize,
    /// Barrier waits longer than this dump the flight recorder tail to
    /// stderr and record a `"straggler"` instant event. `0` disables the
    /// check.
    pub straggler_threshold_ns: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            epoch: Instant::now(),
            mode: TraceMode::Full,
            ring_capacity: 4096,
            straggler_threshold_ns: 0,
        }
    }
}

impl TraceConfig {
    /// A full-trace config whose epoch is now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switch to bounded flight-recorder buffering.
    pub fn flight_recorder(mut self, capacity: usize) -> Self {
        self.mode = TraceMode::FlightRecorder;
        self.ring_capacity = capacity.max(1);
        self
    }

    /// Set the straggler threshold (barrier waits above it dump the flight
    /// recorder).
    pub fn with_straggler_threshold_ns(mut self, ns: u64) -> Self {
        self.straggler_threshold_ns = ns;
        self
    }

    /// Build the recording sink for one track (one partition/worker).
    pub fn sink(&self, track: u32) -> TraceSink {
        TraceSink {
            active: true,
            epoch: self.epoch,
            track,
            straggler_ns: self.straggler_threshold_ns,
            ring: match self.mode {
                TraceMode::Full => 0,
                TraceMode::FlightRecorder => self.ring_capacity.max(1),
            },
            tail: self.ring_capacity.max(1),
            next_overwrite: 0,
            events: Vec::new(),
        }
    }
}

/// Opaque handle returned by [`TraceSink::start`]; feeds `*_since` span
/// recording. Carries a sentinel when recording was off at start time so a
/// mid-span flip of the kill-switch cannot fabricate a garbage span.
#[derive(Clone, Copy, Debug)]
pub struct SpanStart(u64);

const START_DISABLED: u64 = u64::MAX;

/// A per-worker event buffer. Owned by exactly one thread; every record
/// method is one clock read + one `Vec` push (no locks, no allocation once
/// warm). Dropping a sink **while its thread is panicking** dumps the
/// flight-recorder tail to stderr.
#[derive(Debug)]
pub struct TraceSink {
    active: bool,
    epoch: Instant,
    track: u32,
    straggler_ns: u64,
    /// Ring capacity; `0` means unbounded (full trace).
    ring: usize,
    /// Tail length for flight-recorder dumps.
    tail: usize,
    /// Next overwrite position once a bounded ring is full.
    next_overwrite: usize,
    events: Vec<TraceEvent>,
}

impl TraceSink {
    /// A sink that records nothing (for untraced jobs). Its [`Self::now`]
    /// clock still works, so callers can use one code path for timing.
    pub fn inert() -> Self {
        TraceSink {
            active: false,
            epoch: Instant::now(),
            track: 0,
            straggler_ns: 0,
            ring: 0,
            tail: 64,
            next_overwrite: 0,
            events: Vec::new(),
        }
    }

    /// Rebuild a sink from events recorded elsewhere — e.g. shipped across
    /// a process boundary by a telemetry frame. The sink is active and
    /// unbounded, so `Trace::from_sinks` treats it exactly like a locally
    /// recorded one. Its epoch is fresh: the recorded timestamps keep the
    /// clock domain of the worker that produced them.
    pub fn from_recorded(track: u32, events: Vec<TraceEvent>) -> Self {
        TraceSink {
            active: true,
            epoch: Instant::now(),
            track,
            straggler_ns: 0,
            ring: 0,
            tail: 64,
            next_overwrite: 0,
            events,
        }
    }

    /// The track (partition) id this sink records under.
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Whether this sink is currently recording (sink active ∧ global
    /// kill-switch on).
    #[inline]
    pub fn on(&self) -> bool {
        self.active && tracing_enabled()
    }

    /// Nanoseconds since the session epoch. Works on inert sinks too, so
    /// the engine reads one clock for metrics and trace alike.
    #[inline]
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        if self.ring > 0 && self.events.len() >= self.ring {
            self.events[self.next_overwrite] = ev;
            self.next_overwrite = (self.next_overwrite + 1) % self.ring;
        } else {
            self.events.push(ev);
        }
    }

    /// Begin a trace-only span: reads the clock only when recording is on.
    /// Pair with [`Self::span_since`] / [`Self::span_arg_since`].
    #[inline]
    pub fn start(&self) -> SpanStart {
        if self.on() {
            SpanStart(self.now())
        } else {
            SpanStart(START_DISABLED)
        }
    }

    /// Record a span begun by [`Self::start`], ending now.
    #[inline]
    pub fn span_since(&mut self, name: &'static str, start: SpanStart) {
        if start.0 == START_DISABLED || !self.on() {
            return;
        }
        let end = self.now();
        self.push(TraceEvent::Span {
            name,
            start_ns: start.0,
            dur_ns: end.saturating_sub(start.0),
            arg: None,
        });
    }

    /// Record a span begun by [`Self::start`], ending now, with one
    /// argument.
    #[inline]
    pub fn span_arg_since(
        &mut self,
        name: &'static str,
        start: SpanStart,
        key: &'static str,
        value: u64,
    ) {
        if start.0 == START_DISABLED || !self.on() {
            return;
        }
        let end = self.now();
        self.push(TraceEvent::Span {
            name,
            start_ns: start.0,
            dur_ns: end.saturating_sub(start.0),
            arg: Some((key, value)),
        });
    }

    /// Record a span from explicit clock readings (both from [`Self::now`]).
    /// Lets the engine reuse the exact timestamps it already reads for
    /// metrics, making aggregates *exactly* derivable from the trace.
    #[inline]
    pub fn span_at(&mut self, name: &'static str, start_ns: u64, end_ns: u64) {
        if !self.on() {
            return;
        }
        self.push(TraceEvent::Span {
            name,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            arg: None,
        });
    }

    /// [`Self::span_at`] with one argument.
    #[inline]
    pub fn span_arg_at(
        &mut self,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        key: &'static str,
        value: u64,
    ) {
        if !self.on() {
            return;
        }
        self.push(TraceEvent::Span {
            name,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            arg: Some((key, value)),
        });
    }

    /// Record a point event at the current time.
    #[inline]
    pub fn instant(&mut self, name: &'static str, arg: Option<(&'static str, u64)>) {
        if !self.on() {
            return;
        }
        let ts_ns = self.now();
        self.push(TraceEvent::Instant { name, ts_ns, arg });
    }

    /// Sample a counter value at the current time.
    #[inline]
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if !self.on() {
            return;
        }
        let ts_ns = self.now();
        self.push(TraceEvent::Counter { name, ts_ns, value });
    }

    /// Straggler check after a barrier wait: when `wait_ns` exceeds the
    /// configured threshold, records a `"straggler"` instant event and
    /// dumps the flight-recorder tail to stderr.
    pub fn straggler_check(&mut self, wait_ns: u64) {
        if self.straggler_ns == 0 || wait_ns <= self.straggler_ns || !self.on() {
            return;
        }
        self.instant("straggler", Some(("wait_ns", wait_ns)));
        let msg = format!(
            "barrier wait {:.3} ms exceeded straggler threshold {:.3} ms",
            wait_ns as f64 / 1e6,
            self.straggler_ns as f64 / 1e6
        );
        let _ = self.dump_tail(&mut std::io::stderr().lock(), &msg);
    }

    /// Events recorded so far, oldest first (un-rotates a wrapped ring).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = self.events.clone();
        if self.ring > 0 && self.events.len() >= self.ring {
            out.rotate_left(self.next_overwrite);
        }
        out
    }

    /// Drain this sink's events (oldest first), leaving it empty.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        let wrapped = self.ring > 0 && self.events.len() >= self.ring;
        let pivot = self.next_overwrite;
        self.next_overwrite = 0;
        let mut out = std::mem::take(&mut self.events);
        if wrapped {
            out.rotate_left(pivot);
        }
        out
    }

    /// Write the flight-recorder tail (most recent events, bounded by the
    /// ring capacity) to `w`, newest last.
    pub fn dump_tail(&self, w: &mut dyn Write, reason: &str) -> std::io::Result<()> {
        let events = self.events();
        let tail_len = self.tail.min(events.len());
        writeln!(
            w,
            "==== flight recorder: track {} — {reason} (last {tail_len} of {} events) ====",
            self.track,
            events.len()
        )?;
        for ev in &events[events.len() - tail_len..] {
            match *ev {
                TraceEvent::Span {
                    name,
                    start_ns,
                    dur_ns,
                    arg,
                } => {
                    write!(w, "  [{:>14}ns] span    {name} dur={dur_ns}ns", start_ns)?;
                    if let Some((k, v)) = arg {
                        write!(w, " {k}={v}")?;
                    }
                    writeln!(w)?;
                }
                TraceEvent::Instant { name, ts_ns, arg } => {
                    write!(w, "  [{:>14}ns] instant {name}", ts_ns)?;
                    if let Some((k, v)) = arg {
                        write!(w, " {k}={v}")?;
                    }
                    writeln!(w)?;
                }
                TraceEvent::Counter { name, ts_ns, value } => {
                    writeln!(w, "  [{:>14}ns] counter {name} = {value}", ts_ns)?;
                }
            }
        }
        writeln!(w, "==== end flight recorder (track {}) ====", self.track)
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        // The flight-recorder promise: a panicking worker leaves its last
        // events on stderr. Normal completion moves events out via
        // `take_events` first, so this fires only on unwind.
        if self.active && !self.events.is_empty() && std::thread::panicking() {
            let _ = self.dump_tail(&mut std::io::stderr().lock(), "worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TraceConfig {
        TraceConfig::new()
    }

    #[test]
    fn records_spans_counters_instants() {
        let _serial = crate::test_serial();
        let mut s = cfg().sink(3);
        let t0 = s.now();
        let t1 = s.now();
        s.span_arg_at("compute", t0, t1, "superstep", 7);
        s.counter("msgs", 42);
        s.instant("marker", None);
        let evs = s.take_events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].name(), "compute");
        assert!(matches!(evs[1], TraceEvent::Counter { value: 42, .. }));
        assert!(s.take_events().is_empty(), "take drains");
    }

    #[test]
    fn from_recorded_replays_shipped_events() {
        let _serial = crate::test_serial();
        let evs = vec![
            TraceEvent::Span {
                name: "compute",
                start_ns: 5,
                dur_ns: 2,
                arg: None,
            },
            TraceEvent::Counter {
                name: "msgs",
                ts_ns: 9,
                value: 3,
            },
        ];
        let mut s = TraceSink::from_recorded(7, evs.clone());
        assert_eq!(s.track(), 7);
        assert_eq!(s.take_events(), evs);
    }

    #[test]
    fn inert_sink_records_nothing_but_clock_works() {
        let mut s = TraceSink::inert();
        let a = s.now();
        let start = s.start();
        s.span_since("x", start);
        s.span_at("y", 0, 10);
        s.counter("c", 1);
        s.instant("i", None);
        let b = s.now();
        assert!(b >= a, "clock is monotonic");
        assert!(s.events().is_empty());
    }

    #[test]
    fn flight_recorder_ring_keeps_most_recent_in_order() {
        let _serial = crate::test_serial();
        let mut s = cfg().flight_recorder(4).sink(0);
        for i in 0..10u64 {
            s.counter("n", i);
        }
        let evs = s.take_events();
        let vals: Vec<u64> = evs
            .iter()
            .map(|e| match *e {
                TraceEvent::Counter { value, .. } => value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, vec![6, 7, 8, 9]);
    }

    #[test]
    fn dump_tail_formats_events() {
        let _serial = crate::test_serial();
        let mut s = cfg().sink(5);
        s.counter("gofs.bytes_read", 1024);
        let t0 = s.now();
        s.span_at("compute", t0, t0 + 5);
        let mut buf = Vec::new();
        s.dump_tail(&mut buf, "unit test").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("track 5"));
        assert!(text.contains("unit test"));
        assert!(text.contains("gofs.bytes_read = 1024"));
        assert!(text.contains("span    compute"));
    }

    #[test]
    fn straggler_check_records_instant_above_threshold() {
        let _serial = crate::test_serial();
        let mut s = cfg().with_straggler_threshold_ns(1_000).sink(1);
        s.straggler_check(500); // below: nothing
        assert!(s.events().is_empty());
        // Above threshold: instant recorded (the stderr dump is best-effort
        // noise we tolerate in tests).
        s.straggler_check(5_000);
        let evs = s.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name(), "straggler");
        // The marker carries the measured wait as its args field.
        match evs[0] {
            TraceEvent::Instant { arg, .. } => assert_eq!(arg, Some(("wait_ns", 5_000))),
            ref other => panic!("expected an instant, got {other:?}"),
        }
    }

    #[test]
    fn disabled_start_never_fabricates_spans() {
        let _serial = crate::test_serial();
        let mut s = cfg().sink(0);
        crate::set_tracing_enabled(false);
        let start = s.start();
        crate::set_tracing_enabled(true);
        s.span_since("x", start);
        assert!(
            s.events().is_empty(),
            "a span started while disabled must not record"
        );
    }
}
