//! Chrome trace-event JSON export (the `chrome://tracing` / Perfetto
//! format).
//!
//! Emits the JSON-object form `{"traceEvents": [...]}` with:
//!
//! * one `M` (metadata) event naming the process and one per track naming
//!   its "thread" — partitions render as threads;
//! * `X` (complete) events for spans: `ts`/`dur` in microseconds, so
//!   nested engine spans (timestep ⊃ superstep ⊃ compute/send/barrier)
//!   form a flame chart;
//! * `i` (instant) events (e.g. straggler markers);
//! * `C` (counter) events (messages, bytes, GoFS cache hits/misses).
//!
//! Open at <https://ui.perfetto.dev> ("Open trace file") or
//! `chrome://tracing` ("Load").

use crate::sink::TraceEvent;
use crate::trace::Trace;
use std::fmt::Write;

/// The single synthetic process id all tracks live under.
const PID: u32 = 1;

/// Microseconds (3 decimals) from nanoseconds — the trace-event `ts` unit.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Minimal JSON string escaping (names are engine-controlled, but track
/// names are built at runtime).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn arg_json(arg: Option<(&'static str, u64)>) -> String {
    match arg {
        Some((k, v)) => format!(",\"args\":{{\"{}\":{v}}}", escape(k)),
        None => String::new(),
    }
}

impl Trace {
    /// Serialise as Chrome trace-event JSON (see module docs).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.num_events() * 96);
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"tempograph\"}}}}"
        ));
        for t in &self.tracks {
            out.push_str(&format!(
                ",\n{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.track,
                escape(&t.name)
            ));
        }
        for t in &self.tracks {
            for ev in &t.events {
                out.push_str(",\n");
                match *ev {
                    TraceEvent::Span {
                        name,
                        start_ns,
                        dur_ns,
                        arg,
                    } => {
                        let _ = write!(
                            out,
                            "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"dur\":{},\
                             \"name\":\"{}\"{}}}",
                            t.track,
                            us(start_ns),
                            us(dur_ns),
                            escape(name),
                            arg_json(arg)
                        );
                    }
                    TraceEvent::Instant { name, ts_ns, arg } => {
                        let _ = write!(
                            out,
                            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID},\"tid\":{},\"ts\":{},\
                             \"name\":\"{}\"{}}}",
                            t.track,
                            us(ts_ns),
                            escape(name),
                            arg_json(arg)
                        );
                    }
                    TraceEvent::Counter { name, ts_ns, value } => {
                        let _ = write!(
                            out,
                            "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                             \"args\":{{\"value\":{value}}}}}",
                            t.track,
                            us(ts_ns),
                            escape(name)
                        );
                    }
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceTrack;

    #[test]
    fn exports_all_phases_with_stable_pid_tid() {
        let tr = Trace {
            tracks: vec![TraceTrack {
                track: 2,
                name: "partition 2".into(),
                events: vec![
                    TraceEvent::Span {
                        name: "compute",
                        start_ns: 1_500,
                        dur_ns: 2_000,
                        arg: Some(("superstep", 4)),
                    },
                    TraceEvent::Instant {
                        name: "straggler",
                        ts_ns: 4_000,
                        arg: Some(("wait_ns", 123_456)),
                    },
                    TraceEvent::Counter {
                        name: "msgs.remote",
                        ts_ns: 5_000,
                        value: 17,
                    },
                ],
            }],
        };
        let json = tr.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"partition 2\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"superstep\":4"));
        assert!(json.contains("\"ph\":\"i\""));
        // The straggler marker carries its wait duration as an args field,
        // so Perfetto shows *how long* the barrier wait was, not just that
        // one happened.
        assert!(json.contains("\"wait_ns\":123456"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":17"));
        // Every event carries the same pid and this track's tid.
        assert_eq!(json.matches("\"pid\":1").count(), 5);
        assert_eq!(json.matches("\"tid\":2").count(), 4);
        // Brace balance: a cheap structural sanity check (no serde in-tree).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn escapes_runtime_strings() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
