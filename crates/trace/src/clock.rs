//! The workspace's one sanctioned wall-clock: a monotonic stopwatch.
//!
//! Every crate outside `tempograph-trace` is forbidden (lint rule **D02**)
//! from calling `Instant::now` / `SystemTime::now` directly: scattered
//! clock reads are how timing data sneaks past the trace and breaks the
//! "metrics re-derive exactly from the trace" invariant. Code that needs a
//! duration uses either a [`crate::TraceSink`] (when the reading should
//! also be recordable as a span) or this [`Clock`] (driver-side wall
//! timing, CLI reporting, I/O accounting) — both share the same monotonic
//! source, and both live here where the linter can see them.

use std::time::{Duration, Instant};

/// A started monotonic stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Clock(Instant);

impl Clock {
    /// Start measuring now.
    #[inline]
    pub fn start() -> Self {
        Clock(Instant::now())
    }

    /// Nanoseconds elapsed since [`Clock::start`].
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }

    /// Elapsed time since [`Clock::start`] as a [`Duration`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = Clock::start();
        let a = c.elapsed_ns();
        let b = c.elapsed_ns();
        assert!(b >= a);
        assert!(c.elapsed().as_nanos() as u64 >= b);
    }
}
