//! Property tests for the run-record codec: encode/decode is a lossless
//! round trip for arbitrary records, and the encoding is canonical.

use proptest::prelude::*;
use tempograph_ledger::{
    AttributionEntry, ConfigFingerprint, RunAggregates, RunRecord, WorkerTiming,
};

fn arb_string() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_./ -]{0,24}"
}

fn arb_config() -> impl Strategy<Value = ConfigFingerprint> {
    (
        (
            arb_string(),
            arb_string(),
            any::<u32>(),
            any::<u32>(),
            0u32..1024,
        ),
        (
            any::<i64>(),
            any::<i64>(),
            any::<u64>(),
            arb_string(),
            proptest::collection::vec((arb_string(), arb_string()), 0..4),
        ),
    )
        .prop_map(
            |(
                (algorithm, pattern, partitions, subgraphs, timesteps),
                (start_time, period, seed, dataset, env),
            )| {
                ConfigFingerprint {
                    algorithm,
                    pattern,
                    partitions,
                    subgraphs,
                    timesteps,
                    start_time,
                    period,
                    seed,
                    dataset,
                    env,
                }
            },
        )
}

fn arb_aggregates() -> impl Strategy<Value = RunAggregates> {
    proptest::collection::vec(any::<u64>(), 17).prop_map(|v| RunAggregates {
        wall_ns: v[0],
        virtual_ns: v[1],
        compute_ns: v[2],
        msg_ns: v[3],
        sync_ns: v[4],
        io_ns: v[5],
        timesteps_run: v[6],
        supersteps: v[7],
        msgs_local: v[8],
        msgs_remote: v[9],
        bytes_remote: v[10],
        msgs_combined: v[11],
        batches_remote: v[12],
        slice_loads: v[13],
        send_retries: v[14],
        recoveries: v[15],
        emitted_values: v[16],
    })
}

fn arb_worker() -> impl Strategy<Value = WorkerTiming> {
    (
        (any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((partition, compute_ns, msg_ns, sync_ns), (io_ns, wall_ns, supersteps))| {
                WorkerTiming {
                    partition,
                    compute_ns,
                    msg_ns,
                    sync_ns,
                    io_ns,
                    wall_ns,
                    supersteps,
                }
            },
        )
}

fn arb_attr() -> impl Strategy<Value = AttributionEntry> {
    (any::<u32>(), any::<u32>(), any::<u64>(), any::<u32>()).prop_map(
        |(subgraph, timestep, compute_ns, invocations)| AttributionEntry {
            subgraph,
            timestep,
            compute_ns,
            invocations,
        },
    )
}

fn arb_record() -> impl Strategy<Value = RunRecord> {
    (
        (
            arb_config(),
            arb_aggregates(),
            proptest::collection::vec(any::<u64>(), 0..16),
            proptest::collection::vec(arb_worker(), 0..5),
        ),
        (
            proptest::collection::vec(arb_attr(), 0..12),
            proptest::collection::vec((arb_string(), any::<u64>()), 0..4),
            arb_string(),
        ),
    )
        .prop_map(
            |(
                (config, aggregates, virtual_timestep_ns, workers),
                (attribution, counters, metrics_json),
            )| {
                RunRecord {
                    config,
                    aggregates,
                    virtual_timestep_ns,
                    workers,
                    attribution,
                    counters,
                    metrics_json,
                }
            },
        )
}

proptest! {
    #[test]
    fn record_roundtrip(rec in arb_record()) {
        let bytes = rec.encode();
        let back = RunRecord::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &rec);
        // Canonical: re-encoding the decoded record reproduces the bytes.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn truncation_never_yields_a_record(rec in arb_record(), cut in 1usize..64) {
        let bytes = rec.encode();
        let keep = bytes.len().saturating_sub(cut);
        prop_assert!(RunRecord::decode(&bytes[..keep]).is_err());
    }

    #[test]
    fn single_byte_corruption_is_detected(rec in arb_record(), pos in any::<usize>(), flip in 1u8..=255) {
        let mut bytes = rec.encode().to_vec();
        let i = pos % bytes.len();
        bytes[i] ^= flip;
        // Either the frame rejects it outright, or (vanishingly unlikely
        // under FNV-1a) it decodes to something that is not the original.
        match RunRecord::decode(&bytes) {
            Err(_) => {}
            Ok(other) => prop_assert_ne!(other, rec),
        }
    }
}
