//! The on-disk run record: schema, canonical binary codec, and the
//! conversion from a finished [`JobResult`].
//!
//! # Format
//!
//! One record per file, in the GoFS on-disk idiom (`GFRN` magic / u16
//! version / u64 length / FNV-1a checksum frame via
//! [`tempograph_gofs::codec::frame`]). The payload is fixed-width
//! little-endian scalars plus length-prefixed lists — no floats, no maps,
//! no ambient clock or randomness anywhere in the encode path, so the
//! encoding of a given [`RunRecord`] value is canonical: equal records
//! produce byte-identical files.
//!
//! # Compatibility
//!
//! The frame's version field is the GoFS-wide `FORMAT_VERSION`; unknown
//! versions are rejected at `unframe` time with
//! [`GofsError::UnsupportedVersion`], corrupt payloads with typed
//! [`GofsError`] variants. Fields are only ever *appended* to the payload
//! within a version; any removal or reordering bumps the format version.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tempograph_engine::JobResult;
use tempograph_gofs::codec::{self, fnv1a64, frame, unframe};
use tempograph_gofs::error::{GofsError, Result};
use tempograph_metrics::json::Value;
use tempograph_partition::SubgraphId;

/// Magic bytes of a run-record file ("GoFs RuN").
pub const RECORD_MAGIC: [u8; 4] = *b"GFRN";

/// Schema tag of the JSON projection ([`RunRecord::to_value`]).
pub const RECORD_SCHEMA: &str = "tempograph-run/v1";

/// Everything that identifies *what* ran: the inputs that must match for
/// two records to be comparable. The deterministic run id is an FNV-1a
/// hash of this fingerprint's canonical encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfigFingerprint {
    /// Algorithm name (e.g. `hash`, `meme`, `tdsp`).
    pub algorithm: String,
    /// Design pattern (`independent` / `eventually-dependent` /
    /// `sequentially-dependent`).
    pub pattern: String,
    /// Partition count the job ran with.
    pub partitions: u32,
    /// Subgraph count discovered over the template.
    pub subgraphs: u32,
    /// Configured timestep range (the mode's bound, not the count run).
    pub timesteps: u32,
    /// Dataset epoch (seconds) — the time-series range start.
    pub start_time: i64,
    /// Seconds between instances.
    pub period: i64,
    /// Generator/workload seed.
    pub seed: u64,
    /// Dataset path or name.
    pub dataset: String,
    /// Environment, as sorted `(key, value)` pairs. Deliberately excludes
    /// timestamps (like the bench report's env fingerprint) so identical
    /// configs on one host fingerprint identically across executions.
    pub env: Vec<(String, String)>,
}

impl ConfigFingerprint {
    /// The standard environment pairs: os / arch / cpus / debug_build
    /// (mirrors the bench report's env fingerprint — no timestamps).
    pub fn host_env() -> Vec<(String, String)> {
        vec![
            ("arch".to_string(), std::env::consts::ARCH.to_string()),
            ("cpus".to_string(), num_cpus().to_string()),
            (
                "debug_build".to_string(),
                cfg!(debug_assertions).to_string(),
            ),
            ("os".to_string(), std::env::consts::OS.to_string()),
        ]
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        codec::put_str(buf, &self.algorithm);
        codec::put_str(buf, &self.pattern);
        buf.put_u32_le(self.partitions);
        buf.put_u32_le(self.subgraphs);
        buf.put_u32_le(self.timesteps);
        buf.put_i64_le(self.start_time);
        buf.put_i64_le(self.period);
        buf.put_u64_le(self.seed);
        codec::put_str(buf, &self.dataset);
        buf.put_u32_le(self.env.len() as u32);
        for (k, v) in &self.env {
            codec::put_str(buf, k);
            codec::put_str(buf, v);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        let algorithm = codec::get_str(buf)?;
        let pattern = codec::get_str(buf)?;
        let partitions = codec::get_u32(buf)?;
        let subgraphs = codec::get_u32(buf)?;
        let timesteps = codec::get_u32(buf)?;
        let start_time = codec::get_i64(buf)?;
        let period = codec::get_i64(buf)?;
        let seed = codec::get_u64(buf)?;
        let dataset = codec::get_str(buf)?;
        let n_env = codec::get_u32(buf)? as usize;
        let mut env = Vec::with_capacity(n_env.min(1 << 10));
        for _ in 0..n_env {
            let k = codec::get_str(buf)?;
            let v = codec::get_str(buf)?;
            env.push((k, v));
        }
        Ok(ConfigFingerprint {
            algorithm,
            pattern,
            partitions,
            subgraphs,
            timesteps,
            start_time,
            period,
            seed,
            dataset,
            env,
        })
    }

    /// Deterministic run id: `<algorithm>-<fnv1a64 of the canonical
    /// fingerprint encoding>`. Same config + same host class ⇒ same id.
    pub fn run_id(&self) -> String {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        let slug: String = self
            .algorithm
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!("{}-{:016x}", slug, fnv1a64(&buf))
    }
}

/// Whole-job scalar aggregates, one value per named quantity. The field
/// list is the contract [`RunAggregates::fields`] and the `inspect diff`
/// gate iterate over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct RunAggregates {
    pub wall_ns: u64,
    pub virtual_ns: u64,
    pub compute_ns: u64,
    pub msg_ns: u64,
    pub sync_ns: u64,
    pub io_ns: u64,
    pub timesteps_run: u64,
    pub supersteps: u64,
    pub msgs_local: u64,
    pub msgs_remote: u64,
    pub bytes_remote: u64,
    pub msgs_combined: u64,
    pub batches_remote: u64,
    pub slice_loads: u64,
    pub send_retries: u64,
    pub recoveries: u64,
    pub emitted_values: u64,
}

impl RunAggregates {
    /// Every aggregate as `(name, value)`, in declaration order. Names
    /// ending in `_ns` are measured durations; the rest are deterministic
    /// counts for a seeded run.
    pub fn fields(&self) -> [(&'static str, u64); 17] {
        [
            ("wall_ns", self.wall_ns),
            ("virtual_ns", self.virtual_ns),
            ("compute_ns", self.compute_ns),
            ("msg_ns", self.msg_ns),
            ("sync_ns", self.sync_ns),
            ("io_ns", self.io_ns),
            ("timesteps_run", self.timesteps_run),
            ("supersteps", self.supersteps),
            ("msgs_local", self.msgs_local),
            ("msgs_remote", self.msgs_remote),
            ("bytes_remote", self.bytes_remote),
            ("msgs_combined", self.msgs_combined),
            ("batches_remote", self.batches_remote),
            ("slice_loads", self.slice_loads),
            ("send_retries", self.send_retries),
            ("recoveries", self.recoveries),
            ("emitted_values", self.emitted_values),
        ]
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        for (_, v) in self.fields() {
            buf.put_u64_le(v);
        }
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        Ok(RunAggregates {
            wall_ns: codec::get_u64(buf)?,
            virtual_ns: codec::get_u64(buf)?,
            compute_ns: codec::get_u64(buf)?,
            msg_ns: codec::get_u64(buf)?,
            sync_ns: codec::get_u64(buf)?,
            io_ns: codec::get_u64(buf)?,
            timesteps_run: codec::get_u64(buf)?,
            supersteps: codec::get_u64(buf)?,
            msgs_local: codec::get_u64(buf)?,
            msgs_remote: codec::get_u64(buf)?,
            bytes_remote: codec::get_u64(buf)?,
            msgs_combined: codec::get_u64(buf)?,
            batches_remote: codec::get_u64(buf)?,
            slice_loads: codec::get_u64(buf)?,
            send_retries: codec::get_u64(buf)?,
            recoveries: codec::get_u64(buf)?,
            emitted_values: codec::get_u64(buf)?,
        })
    }
}

/// One worker's (partition's) whole-run time breakdown, derived from the
/// per-timestep metrics the worker's `TraceSink::now` readings produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerTiming {
    /// Partition index.
    pub partition: u32,
    /// Total nanoseconds inside program hooks.
    pub compute_ns: u64,
    /// Total nanoseconds marshalling/routing messages.
    pub msg_ns: u64,
    /// Total nanoseconds at barriers.
    pub sync_ns: u64,
    /// Total nanoseconds loading instances.
    pub io_ns: u64,
    /// Summed per-timestep wall nanoseconds.
    pub wall_ns: u64,
    /// Supersteps this worker ran (max per timestep, summed).
    pub supersteps: u64,
}

impl WorkerTiming {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.partition);
        buf.put_u64_le(self.compute_ns);
        buf.put_u64_le(self.msg_ns);
        buf.put_u64_le(self.sync_ns);
        buf.put_u64_le(self.io_ns);
        buf.put_u64_le(self.wall_ns);
        buf.put_u64_le(self.supersteps);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        Ok(WorkerTiming {
            partition: codec::get_u32(buf)?,
            compute_ns: codec::get_u64(buf)?,
            msg_ns: codec::get_u64(buf)?,
            sync_ns: codec::get_u64(buf)?,
            io_ns: codec::get_u64(buf)?,
            wall_ns: codec::get_u64(buf)?,
            supersteps: codec::get_u64(buf)?,
        })
    }
}

/// One persisted attribution row (see
/// [`tempograph_engine::AttributionRow`] — same semantics, fixed-width).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttributionEntry {
    /// Subgraph id.
    pub subgraph: u32,
    /// Timestep (`u32::MAX` ⇒ merge phase).
    pub timestep: u32,
    /// Measured nanoseconds inside this subgraph's hooks at this timestep.
    pub compute_ns: u64,
    /// Program-hook invocations (deterministic for a seeded run).
    pub invocations: u32,
}

impl AttributionEntry {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.subgraph);
        buf.put_u32_le(self.timestep);
        buf.put_u64_le(self.compute_ns);
        buf.put_u32_le(self.invocations);
    }

    fn decode_from(buf: &mut Bytes) -> Result<Self> {
        Ok(AttributionEntry {
            subgraph: codec::get_u32(buf)?,
            timestep: codec::get_u32(buf)?,
            compute_ns: codec::get_u64(buf)?,
            invocations: codec::get_u32(buf)?,
        })
    }
}

/// A durable record of one job run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunRecord {
    /// What ran (also derives the run id).
    pub config: ConfigFingerprint,
    /// Whole-job scalar aggregates.
    pub aggregates: RunAggregates,
    /// Virtual (simulated-cluster) makespan per executed timestep —
    /// `Σ_ss max_p compute[ss][p] + max_p msg + max_p io`, built from the
    /// per-superstep timings the trace clock measured.
    pub virtual_timestep_ns: Vec<u64>,
    /// Per-worker whole-run breakdowns, in partition order.
    pub workers: Vec<WorkerTiming>,
    /// The per-(subgraph, timestep) compute attribution table, sorted by
    /// `(subgraph, timestep)`; empty when the job ran without
    /// `JobConfig::with_attribution`.
    pub attribution: Vec<AttributionEntry>,
    /// User counter totals (summed over timesteps, partitions, and merge),
    /// sorted by name.
    pub counters: Vec<(String, u64)>,
    /// The canonical metrics snapshot JSON (`tempograph-metrics/v1`), or
    /// empty when the job ran without metrics (or the record was made
    /// deterministic via [`RunRecord::strip_nondeterminism`]).
    pub metrics_json: String,
}

impl RunRecord {
    /// Build a record from a finished job. Captures aggregates, worker
    /// breakdowns, the virtual-makespan series, counter totals, the
    /// attribution table, and the metrics snapshot when present.
    pub fn from_result(config: ConfigFingerprint, result: &JobResult) -> RunRecord {
        let mut agg = RunAggregates {
            wall_ns: result.total_wall_ns,
            virtual_ns: result.virtual_total_ns(),
            timesteps_run: result.timesteps_run as u64,
            recoveries: result.recoveries as u64,
            emitted_values: result.emitted.len() as u64,
            ..Default::default()
        };
        let rows = result
            .metrics
            .iter()
            .flat_map(|per_t| per_t.iter())
            .chain(result.merge_metrics.iter());
        for m in rows {
            agg.compute_ns += m.compute_ns;
            agg.msg_ns += m.msg_ns;
            agg.sync_ns += m.sync_ns;
            agg.io_ns += m.io_ns;
            agg.msgs_local += m.msgs_local;
            agg.msgs_remote += m.msgs_remote;
            agg.bytes_remote += m.bytes_remote;
            agg.msgs_combined += m.msgs_combined;
            agg.batches_remote += m.batches_remote;
            agg.slice_loads += m.slice_loads;
            agg.send_retries += m.send_retries;
        }
        // Supersteps are barrier-synchronised: per-timestep max, summed
        // (the same reduce `JobResult::export_into` applies).
        for per_t in &result.metrics {
            agg.supersteps += u64::from(per_t.iter().map(|m| m.supersteps).max().unwrap_or(0));
        }
        agg.supersteps += u64::from(
            result
                .merge_metrics
                .iter()
                .map(|m| m.supersteps)
                .max()
                .unwrap_or(0),
        );

        let workers = result
            .partition_breakdown()
            .iter()
            .enumerate()
            .map(|(p, m)| WorkerTiming {
                partition: p as u32,
                compute_ns: m.compute_ns,
                msg_ns: m.msg_ns,
                sync_ns: m.sync_ns,
                io_ns: m.io_ns,
                wall_ns: m.wall_ns,
                supersteps: u64::from(m.supersteps),
            })
            .collect();

        let virtual_timestep_ns = (0..result.timesteps_run)
            .map(|t| result.virtual_timestep_ns(t))
            .collect();

        let attribution = result
            .attribution
            .as_ref()
            .map(|a| {
                a.rows
                    .iter()
                    .map(|r| AttributionEntry {
                        subgraph: r.subgraph.0,
                        timestep: r.timestep,
                        compute_ns: r.compute_ns,
                        invocations: r.invocations,
                    })
                    .collect()
            })
            .unwrap_or_default();

        // Counter totals: timestep rows + merge rows, name-sorted (both
        // maps are BTreeMaps, so iteration is already ordered).
        let mut counters: Vec<(String, u64)> = Vec::with_capacity(result.counters.len());
        for (name, per_t) in &result.counters {
            let total: u64 = per_t.iter().flatten().sum();
            counters.push((name.clone(), total));
        }
        for (name, per_p) in &result.merge_counters {
            let total: u64 = per_p.iter().sum();
            match counters.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => counters[i].1 += total,
                Err(i) => counters.insert(i, (name.clone(), total)),
            }
        }

        let metrics_json = result
            .registry
            .as_ref()
            .map(|reg| reg.snapshot().to_json())
            .unwrap_or_default();

        RunRecord {
            config,
            aggregates: agg,
            virtual_timestep_ns,
            workers,
            attribution,
            counters,
            metrics_json,
        }
    }

    /// The record's deterministic run id (see
    /// [`ConfigFingerprint::run_id`]).
    pub fn run_id(&self) -> String {
        self.config.run_id()
    }

    /// Measured per-subgraph cost totals from the attribution table, as
    /// the `(SubgraphId, cost)` pairs
    /// `partition::suggest_rebalance_from` consumes. `measured` picks the
    /// clock-measured nanoseconds; `false` picks the deterministic
    /// invocation counts instead.
    pub fn per_subgraph_costs(&self, measured: bool) -> Vec<(SubgraphId, u64)> {
        let mut out: Vec<(SubgraphId, u64)> = Vec::new();
        // Rows are (subgraph, timestep)-sorted, so equal ids are adjacent.
        for e in &self.attribution {
            let v = if measured {
                e.compute_ns
            } else {
                u64::from(e.invocations)
            };
            match out.last_mut() {
                Some((sg, total)) if sg.0 == e.subgraph => *total += v,
                _ => out.push((SubgraphId(e.subgraph), v)),
            }
        }
        out
    }

    /// Zero every clock-measured field and drop the metrics snapshot,
    /// leaving only deterministic content (counts, invocations, config).
    /// A stripped record of a seeded run encodes byte-identically across
    /// executions — the property the CI inspect smoke asserts.
    pub fn strip_nondeterminism(&mut self) {
        let a = &mut self.aggregates;
        a.wall_ns = 0;
        a.virtual_ns = 0;
        a.compute_ns = 0;
        a.msg_ns = 0;
        a.sync_ns = 0;
        a.io_ns = 0;
        // Wire sizes are deterministic; clock-derived fields are not.
        self.virtual_timestep_ns.iter_mut().for_each(|v| *v = 0);
        for w in &mut self.workers {
            w.compute_ns = 0;
            w.msg_ns = 0;
            w.sync_ns = 0;
            w.io_ns = 0;
            w.wall_ns = 0;
        }
        for e in &mut self.attribution {
            e.compute_ns = 0;
        }
        // The snapshot embeds timing histograms; drop it wholesale rather
        // than surgically zeroing JSON.
        self.metrics_json = String::new();
    }

    /// Encode to the framed on-disk representation.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.config.encode_into(&mut buf);
        self.aggregates.encode_into(&mut buf);
        buf.put_u32_le(self.virtual_timestep_ns.len() as u32);
        for &v in &self.virtual_timestep_ns {
            buf.put_u64_le(v);
        }
        buf.put_u32_le(self.workers.len() as u32);
        for w in &self.workers {
            w.encode_into(&mut buf);
        }
        buf.put_u32_le(self.attribution.len() as u32);
        for e in &self.attribution {
            e.encode_into(&mut buf);
        }
        buf.put_u32_le(self.counters.len() as u32);
        for (name, v) in &self.counters {
            codec::put_str(&mut buf, name);
            buf.put_u64_le(*v);
        }
        codec::put_str(&mut buf, &self.metrics_json);
        frame(RECORD_MAGIC, &buf)
    }

    /// Decode a framed record, verifying magic, version, and checksum.
    pub fn decode(data: &[u8]) -> Result<RunRecord> {
        let mut buf = unframe(RECORD_MAGIC, data)?;
        let config = ConfigFingerprint::decode_from(&mut buf)?;
        let aggregates = RunAggregates::decode_from(&mut buf)?;
        let n_virtual = codec::get_u32(&mut buf)? as usize;
        if buf.remaining() < n_virtual * 8 {
            return Err(GofsError::Corrupt(format!(
                "virtual series claims {n_virtual} entries but only {} bytes remain",
                buf.remaining()
            )));
        }
        let mut virtual_timestep_ns = Vec::with_capacity(n_virtual.min(1 << 16));
        for _ in 0..n_virtual {
            virtual_timestep_ns.push(codec::get_u64(&mut buf)?);
        }
        let n_workers = codec::get_u32(&mut buf)? as usize;
        let mut workers = Vec::with_capacity(n_workers.min(1 << 16));
        for _ in 0..n_workers {
            workers.push(WorkerTiming::decode_from(&mut buf)?);
        }
        let n_attr = codec::get_u32(&mut buf)? as usize;
        if buf.remaining() < n_attr * 20 {
            return Err(GofsError::Corrupt(format!(
                "attribution table claims {n_attr} rows but only {} bytes remain",
                buf.remaining()
            )));
        }
        let mut attribution = Vec::with_capacity(n_attr.min(1 << 16));
        for _ in 0..n_attr {
            attribution.push(AttributionEntry::decode_from(&mut buf)?);
        }
        let n_counters = codec::get_u32(&mut buf)? as usize;
        let mut counters = Vec::with_capacity(n_counters.min(1 << 16));
        for _ in 0..n_counters {
            let name = codec::get_str(&mut buf)?;
            let v = codec::get_u64(&mut buf)?;
            counters.push((name, v));
        }
        let metrics_json = codec::get_str(&mut buf)?;
        if buf.remaining() > 0 {
            return Err(GofsError::Corrupt(format!(
                "{} trailing bytes after run record",
                buf.remaining()
            )));
        }
        Ok(RunRecord {
            config,
            aggregates,
            virtual_timestep_ns,
            workers,
            attribution,
            counters,
            metrics_json,
        })
    }

    /// Canonical JSON projection (`inspect show --json`). Deterministic
    /// for equal records: ordered object keys, lossless `u64` tokens.
    pub fn to_value(&self) -> Value {
        let c = &self.config;
        let config = Value::Obj(vec![
            ("algorithm".into(), Value::str(&c.algorithm)),
            ("pattern".into(), Value::str(&c.pattern)),
            ("partitions".into(), Value::u64(u64::from(c.partitions))),
            ("subgraphs".into(), Value::u64(u64::from(c.subgraphs))),
            ("timesteps".into(), Value::u64(u64::from(c.timesteps))),
            ("start_time".into(), Value::Num(c.start_time.to_string())),
            ("period".into(), Value::Num(c.period.to_string())),
            ("seed".into(), Value::u64(c.seed)),
            ("dataset".into(), Value::str(&c.dataset)),
            (
                "env".into(),
                Value::Obj(
                    c.env
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::str(v)))
                        .collect(),
                ),
            ),
        ]);
        let aggregates = Value::Obj(
            self.aggregates
                .fields()
                .iter()
                .map(|&(name, v)| (name.to_string(), Value::u64(v)))
                .collect(),
        );
        let workers = Value::Arr(
            self.workers
                .iter()
                .map(|w| {
                    Value::Obj(vec![
                        ("partition".into(), Value::u64(u64::from(w.partition))),
                        ("compute_ns".into(), Value::u64(w.compute_ns)),
                        ("msg_ns".into(), Value::u64(w.msg_ns)),
                        ("sync_ns".into(), Value::u64(w.sync_ns)),
                        ("io_ns".into(), Value::u64(w.io_ns)),
                        ("wall_ns".into(), Value::u64(w.wall_ns)),
                        ("supersteps".into(), Value::u64(w.supersteps)),
                    ])
                })
                .collect(),
        );
        let attribution = Value::Arr(
            self.attribution
                .iter()
                .map(|e| {
                    Value::Arr(vec![
                        Value::u64(u64::from(e.subgraph)),
                        Value::u64(u64::from(e.timestep)),
                        Value::u64(e.compute_ns),
                        Value::u64(u64::from(e.invocations)),
                    ])
                })
                .collect(),
        );
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(name, v)| (name.clone(), Value::u64(*v)))
                .collect(),
        );
        Value::Obj(vec![
            ("schema".into(), Value::str(RECORD_SCHEMA)),
            ("run".into(), Value::str(&self.run_id())),
            ("config".into(), config),
            ("aggregates".into(), aggregates),
            (
                "virtual_timestep_ns".into(),
                Value::Arr(
                    self.virtual_timestep_ns
                        .iter()
                        .map(|&v| Value::u64(v))
                        .collect(),
                ),
            ),
            ("workers".into(), workers),
            ("attribution".into(), attribution),
            ("counters".into(), counters),
            (
                "metrics".into(),
                // Stored as canonical `tempograph-metrics/v1` JSON text;
                // embed it structurally (it round-trips losslessly), fall
                // back to a raw string if it somehow doesn't parse.
                if self.metrics_json.is_empty() {
                    Value::Null
                } else {
                    Value::parse(&self.metrics_json)
                        .unwrap_or_else(|_| Value::str(&self.metrics_json))
                },
            ),
        ])
    }
}

/// Parallelism of the host, mirroring the bench report's env field.
fn num_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> RunRecord {
        RunRecord {
            config: ConfigFingerprint {
                algorithm: "hash".into(),
                pattern: "eventually-dependent".into(),
                partitions: 3,
                subgraphs: 7,
                timesteps: 8,
                start_time: 1_400_000_000,
                period: 3600,
                seed: 0xBE4C,
                dataset: "/data/tweets".into(),
                env: ConfigFingerprint::host_env(),
            },
            aggregates: RunAggregates {
                wall_ns: 123_456_789,
                virtual_ns: 98_765_432,
                compute_ns: 55_000,
                msg_ns: 4_400,
                sync_ns: 330,
                io_ns: 22,
                timesteps_run: 8,
                supersteps: 31,
                msgs_local: 1000,
                msgs_remote: 250,
                bytes_remote: 9000,
                msgs_combined: 12,
                batches_remote: 40,
                slice_loads: 21,
                send_retries: 0,
                recoveries: 0,
                emitted_values: 77,
            },
            virtual_timestep_ns: vec![10, 20, 30, 40, 50, 60, 70, 80],
            workers: (0..3)
                .map(|p| WorkerTiming {
                    partition: p,
                    compute_ns: 1000 + u64::from(p),
                    msg_ns: 10,
                    sync_ns: 20,
                    io_ns: 5,
                    wall_ns: 2000,
                    supersteps: 31,
                })
                .collect(),
            attribution: vec![
                AttributionEntry {
                    subgraph: 0,
                    timestep: 0,
                    compute_ns: 500,
                    invocations: 4,
                },
                AttributionEntry {
                    subgraph: 0,
                    timestep: 1,
                    compute_ns: 300,
                    invocations: 2,
                },
                AttributionEntry {
                    subgraph: 2,
                    timestep: u32::MAX,
                    compute_ns: 90,
                    invocations: 1,
                },
            ],
            counters: vec![("colored".into(), 17), ("seen".into(), 40)],
            metrics_json: String::from(r#"{"schema":"tempograph-metrics/v1","metrics":[]}"#),
        }
    }

    #[test]
    fn round_trips_exactly() {
        let rec = sample();
        let bytes = rec.encode();
        let back = RunRecord::decode(&bytes).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn empty_record_round_trips() {
        let rec = RunRecord::default();
        assert_eq!(RunRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn encoding_is_canonical() {
        // Equal values ⇒ byte-identical files: encode twice and compare.
        let rec = sample();
        assert_eq!(rec.encode(), rec.clone().encode());
    }

    #[test]
    fn corruption_is_detected() {
        let rec = sample();
        let good = rec.encode();

        // Bit flip in the payload → checksum mismatch.
        let mut flipped = good.to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            RunRecord::decode(&flipped),
            Err(GofsError::ChecksumMismatch { .. })
        ));

        // Truncation → error, never a partial record.
        assert!(RunRecord::decode(&good[..good.len() - 3]).is_err());

        // Future version → typed rejection.
        let mut stale = good.to_vec();
        stale[4] = 0xFF;
        assert!(matches!(
            RunRecord::decode(&stale),
            Err(GofsError::UnsupportedVersion(_))
        ));

        // Wrong magic → typed rejection.
        let mut alien = good.to_vec();
        alien[0] = b'X';
        assert!(matches!(
            RunRecord::decode(&alien),
            Err(GofsError::BadMagic { .. })
        ));
    }

    #[test]
    fn run_id_is_deterministic_and_config_sensitive() {
        let rec = sample();
        assert_eq!(rec.run_id(), sample().run_id());
        assert!(rec.run_id().starts_with("hash-"));
        let mut other = sample();
        other.config.seed ^= 1;
        assert_ne!(rec.run_id(), other.run_id());
        // Timings don't participate: the id fingerprints the *config*.
        let mut slow = sample();
        slow.aggregates.wall_ns *= 2;
        assert_eq!(rec.run_id(), slow.run_id());
    }

    #[test]
    fn strip_nondeterminism_zeroes_all_measured_fields() {
        let mut rec = sample();
        rec.strip_nondeterminism();
        assert_eq!(rec.aggregates.wall_ns, 0);
        assert_eq!(rec.aggregates.virtual_ns, 0);
        assert_eq!(rec.aggregates.compute_ns, 0);
        assert!(rec.virtual_timestep_ns.iter().all(|&v| v == 0));
        assert!(rec
            .workers
            .iter()
            .all(|w| w.compute_ns == 0 && w.wall_ns == 0));
        assert!(rec.attribution.iter().all(|e| e.compute_ns == 0));
        assert!(rec.metrics_json.is_empty());
        // Deterministic content survives.
        assert_eq!(rec.aggregates.msgs_local, 1000);
        assert_eq!(rec.attribution[0].invocations, 4);
        assert_eq!(rec.counters.len(), 2);

        // Two runs differing only in measured timings strip to identical
        // bytes — the CI byte-identity property in miniature.
        let mut a = sample();
        let mut b = sample();
        b.aggregates.wall_ns += 31337;
        b.workers[1].sync_ns += 7;
        b.attribution[2].compute_ns += 99;
        a.strip_nondeterminism();
        b.strip_nondeterminism();
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn per_subgraph_costs_fold_rows() {
        let rec = sample();
        assert_eq!(
            rec.per_subgraph_costs(true),
            vec![(SubgraphId(0), 800), (SubgraphId(2), 90)]
        );
        assert_eq!(
            rec.per_subgraph_costs(false),
            vec![(SubgraphId(0), 6), (SubgraphId(2), 1)]
        );
    }

    #[test]
    fn json_projection_is_deterministic_and_tagged() {
        let rec = sample();
        let v = rec.to_value();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(RECORD_SCHEMA)
        );
        assert_eq!(
            v.get("run").and_then(|s| s.as_str()),
            Some(rec.run_id().as_str())
        );
        assert_eq!(v.write(), rec.to_value().write());
        assert_eq!(
            v.get("aggregates")
                .and_then(|a| a.get("wall_ns"))
                .and_then(|x| x.as_u64()),
            Some(123_456_789)
        );
        // Embedded metrics snapshot is structural, not an escaped string.
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("schema"))
                .and_then(|s| s.as_str()),
            Some("tempograph-metrics/v1")
        );
    }
}
