//! The ledger directory: one `<run-id>.tgrun` file per recorded run,
//! written atomically (staged `.tmp` sibling + rename, like every GoFS
//! artifact), listed and loaded by name.

use crate::record::RunRecord;
use std::path::{Path, PathBuf};
use tempograph_gofs::error::{GofsError, Result};
use tempograph_gofs::store::write_atomic;

/// File extension of a run record.
pub const RECORD_EXT: &str = "tgrun";

/// A directory of run records.
#[derive(Clone, Debug)]
pub struct Ledger {
    dir: PathBuf,
}

impl Ledger {
    /// Open (creating if needed) a ledger directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Ledger> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(GofsError::Io)?;
        Ok(Ledger { dir })
    }

    /// The directory this ledger lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the record named `name` (no extension).
    pub fn path_of(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{RECORD_EXT}"))
    }

    /// Run names present, sorted (directory order is never exposed).
    pub fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir).map_err(GofsError::Io)? {
            let entry = entry.map_err(GofsError::Io)?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(RECORD_EXT) {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                names.push(stem.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Load a record by name.
    pub fn load(&self, name: &str) -> Result<RunRecord> {
        let data = std::fs::read(self.path_of(name)).map_err(GofsError::Io)?;
        RunRecord::decode(&data)
    }

    /// Record a run, returning the name it was stored under. The name is
    /// the record's deterministic run id; when that name is already taken
    /// by a *different* record, a `-2`, `-3`, … suffix disambiguates
    /// (re-recording an identical run is idempotent and reuses the name).
    pub fn record(&self, rec: &RunRecord) -> Result<String> {
        let base = rec.run_id();
        let encoded = rec.encode();
        let mut name = base.clone();
        let mut suffix = 2usize;
        loop {
            let path = self.path_of(&name);
            match std::fs::read(&path) {
                Ok(existing) => {
                    if existing.as_slice() == &encoded[..] {
                        return Ok(name);
                    }
                    name = format!("{base}-{suffix}");
                    suffix += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    write_atomic(&path, &encoded)?;
                    return Ok(name);
                }
                Err(e) => return Err(GofsError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ledger-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample() -> RunRecord {
        let mut rec = RunRecord::default();
        rec.config.algorithm = "hash".into();
        rec.config.seed = 42;
        rec.aggregates.msgs_local = 7;
        rec
    }

    #[test]
    fn record_list_load_round_trip() {
        let ledger = Ledger::open(tmp()).unwrap();
        let rec = sample();
        let name = ledger.record(&rec).unwrap();
        assert_eq!(name, rec.run_id());
        assert_eq!(ledger.list().unwrap(), vec![name.clone()]);
        assert_eq!(ledger.load(&name).unwrap(), rec);
    }

    #[test]
    fn identical_rerecord_is_idempotent() {
        let ledger = Ledger::open(tmp()).unwrap();
        let rec = sample();
        let a = ledger.record(&rec).unwrap();
        let b = ledger.record(&rec).unwrap();
        assert_eq!(a, b);
        assert_eq!(ledger.list().unwrap().len(), 1);
    }

    #[test]
    fn same_config_different_content_gets_suffix() {
        let ledger = Ledger::open(tmp()).unwrap();
        let rec = sample();
        let mut other = sample();
        other.aggregates.wall_ns = 999; // same fingerprint, new timings
        let a = ledger.record(&rec).unwrap();
        let b = ledger.record(&other).unwrap();
        assert_eq!(b, format!("{a}-2"));
        assert_eq!(ledger.load(&b).unwrap(), other);
        let c = ledger.record(&RunRecord {
            aggregates: crate::record::RunAggregates {
                wall_ns: 1234,
                ..other.aggregates
            },
            ..other.clone()
        });
        assert_eq!(c.unwrap(), format!("{a}-3"));
    }

    #[test]
    fn list_ignores_foreign_files_and_sorts() {
        let dir = tmp();
        let ledger = Ledger::open(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        let mut b = sample();
        b.config.algorithm = "zzz".into();
        let mut a = sample();
        a.config.algorithm = "aaa".into();
        ledger.record(&b).unwrap();
        ledger.record(&a).unwrap();
        let names = ledger.list().unwrap();
        assert_eq!(names.len(), 2);
        assert!(names[0] < names[1]);
    }

    #[test]
    fn load_missing_is_io_error() {
        let ledger = Ledger::open(tmp()).unwrap();
        assert!(matches!(ledger.load("absent"), Err(GofsError::Io(_))));
    }
}
