//! Record-to-record comparison with the bench gate's noise-floor logic.
//!
//! Timing fields (names ending `_ns`) regress only when they exceed both
//! the relative threshold *and* an absolute noise floor — the same rule
//! `tempograph-bench`'s report gate applies, so `inspect diff` and the
//! bench gate agree on what counts as a regression. Count fields are
//! deterministic for a seeded run; any change to them is reported as a
//! fatal drift regardless of magnitude.

use crate::record::RunRecord;

/// Absolute floor below which a timing delta is noise, whatever the
/// percentage (matches the bench gate).
pub const NOISE_FLOOR_NS: u64 = 25_000_000;

/// Default relative regression threshold for timing fields (+50%).
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// How one field moved between two records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// Timing regression past threshold + noise floor: gate-fatal.
    TimingRegression,
    /// Timing movement within tolerance: informational.
    TimingDrift,
    /// A deterministic count changed: gate-fatal (same seed should
    /// reproduce identical counts).
    CountChanged,
}

/// One changed field between two records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDelta {
    /// Where the field lives (`aggregates` or `counters`).
    pub section: &'static str,
    /// Field or counter name.
    pub field: String,
    /// Value in the old (baseline) record.
    pub old: u64,
    /// Value in the new record.
    pub new: u64,
    /// Classification under the gate rules.
    pub kind: DeltaKind,
}

impl FieldDelta {
    /// True when this delta should fail a gated comparison.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self.kind,
            DeltaKind::TimingRegression | DeltaKind::CountChanged
        )
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        match self.kind {
            DeltaKind::TimingRegression | DeltaKind::TimingDrift => {
                let pct = if self.old > 0 {
                    (self.new as f64 - self.old as f64) / self.old as f64 * 100.0
                } else {
                    0.0
                };
                let label = if self.kind == DeltaKind::TimingRegression {
                    "REGRESSION"
                } else {
                    "drift"
                };
                format!(
                    "{label} {}.{}: {}ms -> {}ms ({:+.1}%)",
                    self.section,
                    self.field,
                    self.old / 1_000_000,
                    self.new / 1_000_000,
                    pct
                )
            }
            DeltaKind::CountChanged => format!(
                "COUNT CHANGED {}.{}: {} -> {}",
                self.section, self.field, self.old, self.new
            ),
        }
    }
}

/// The result of comparing two records.
#[derive(Clone, Debug, Default)]
pub struct RecordDiff {
    /// Every changed field, in a deterministic order (aggregates in
    /// declaration order, then counters by name).
    pub deltas: Vec<FieldDelta>,
    /// True when the two records' config fingerprints differ (comparison
    /// is still produced, but apples-to-apples is not guaranteed).
    pub config_differs: bool,
}

impl RecordDiff {
    /// Gate-fatal deltas only.
    pub fn fatal(&self) -> impl Iterator<Item = &FieldDelta> {
        self.deltas.iter().filter(|d| d.is_fatal())
    }

    /// True when a gated comparison should fail.
    pub fn has_fatal(&self) -> bool {
        self.deltas.iter().any(FieldDelta::is_fatal)
    }
}

/// Classify one timing field move under the noise-floor gate rule:
/// regression iff `new > round(old * (1 + threshold))` **and**
/// `new - old > NOISE_FLOOR_NS`.
fn classify_timing(old: u64, new: u64, threshold: f64) -> DeltaKind {
    let limit = (old as f64 * (1.0 + threshold)).round() as u64;
    if new > limit && new - old > NOISE_FLOOR_NS {
        DeltaKind::TimingRegression
    } else {
        DeltaKind::TimingDrift
    }
}

/// Compare two records field-by-field. `threshold` is the relative timing
/// tolerance (e.g. 0.5 ⇒ +50%).
pub fn diff_records(old: &RunRecord, new: &RunRecord, threshold: f64) -> RecordDiff {
    let mut deltas = Vec::new();
    for ((name, o), (_, n)) in old
        .aggregates
        .fields()
        .iter()
        .zip(new.aggregates.fields().iter())
    {
        if o == n {
            continue;
        }
        let kind = if name.ends_with("_ns") {
            classify_timing(*o, *n, threshold)
        } else {
            DeltaKind::CountChanged
        };
        deltas.push(FieldDelta {
            section: "aggregates",
            field: (*name).to_string(),
            old: *o,
            new: *n,
            kind,
        });
    }

    // Counters: union of names, absent ⇒ 0. Both lists are name-sorted,
    // so a two-pointer merge keeps the output deterministic.
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        let (name, o, n) = match (old.counters.get(i), new.counters.get(j)) {
            (Some((a, ov)), Some((b, nv))) => match a.cmp(b) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                    (a.clone(), *ov, *nv)
                }
                std::cmp::Ordering::Less => {
                    i += 1;
                    (a.clone(), *ov, 0)
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    (b.clone(), 0, *nv)
                }
            },
            (Some((a, ov)), None) => {
                i += 1;
                (a.clone(), *ov, 0)
            }
            (None, Some((b, nv))) => {
                j += 1;
                (b.clone(), 0, *nv)
            }
            (None, None) => break,
        };
        if o != n {
            deltas.push(FieldDelta {
                section: "counters",
                field: name,
                old: o,
                new: n,
                kind: DeltaKind::CountChanged,
            });
        }
    }

    RecordDiff {
        deltas,
        config_differs: old.config != new.config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(wall_ns: u64, msgs_local: u64) -> RunRecord {
        let mut r = RunRecord::default();
        r.aggregates.wall_ns = wall_ns;
        r.aggregates.msgs_local = msgs_local;
        r
    }

    #[test]
    fn identical_records_diff_clean() {
        let a = rec(1_000_000_000, 42);
        let d = diff_records(&a, &a.clone(), DEFAULT_THRESHOLD);
        assert!(d.deltas.is_empty());
        assert!(!d.has_fatal());
        assert!(!d.config_differs);
    }

    #[test]
    fn timing_regression_needs_threshold_and_floor() {
        // +100% but only 10ms absolute: under the 25ms floor ⇒ drift.
        let d = diff_records(&rec(10_000_000, 0), &rec(20_000_000, 0), 0.5);
        assert_eq!(d.deltas.len(), 1);
        assert_eq!(d.deltas[0].kind, DeltaKind::TimingDrift);
        assert!(!d.has_fatal());

        // +100% and 1000ms absolute: past both ⇒ regression.
        let d = diff_records(&rec(1_000_000_000, 0), &rec(2_000_000_000, 0), 0.5);
        assert_eq!(d.deltas[0].kind, DeltaKind::TimingRegression);
        assert!(d.has_fatal());
        assert!(d.deltas[0].describe().contains("REGRESSION"));

        // Large absolute but under +50% ⇒ drift.
        let d = diff_records(&rec(1_000_000_000, 0), &rec(1_400_000_000, 0), 0.5);
        assert_eq!(d.deltas[0].kind, DeltaKind::TimingDrift);

        // Improvements never regress.
        let d = diff_records(&rec(2_000_000_000, 0), &rec(1_000_000_000, 0), 0.5);
        assert_eq!(d.deltas[0].kind, DeltaKind::TimingDrift);
    }

    #[test]
    fn count_changes_are_always_fatal() {
        let d = diff_records(&rec(0, 41), &rec(0, 42), DEFAULT_THRESHOLD);
        assert_eq!(d.deltas.len(), 1);
        assert_eq!(d.deltas[0].kind, DeltaKind::CountChanged);
        assert!(d.has_fatal());
        assert!(d.deltas[0].describe().contains("COUNT CHANGED"));
    }

    #[test]
    fn counter_union_handles_asymmetry() {
        let a = RunRecord {
            counters: vec![("colored".into(), 5), ("seen".into(), 9)],
            ..Default::default()
        };
        let b = RunRecord {
            counters: vec![("infected".into(), 3), ("seen".into(), 9)],
            ..Default::default()
        };
        let d = diff_records(&a, &b, DEFAULT_THRESHOLD);
        let names: Vec<&str> = d.deltas.iter().map(|x| x.field.as_str()).collect();
        assert_eq!(names, vec!["colored", "infected"]);
        assert_eq!(d.deltas[0].new, 0);
        assert_eq!(d.deltas[1].old, 0);
    }

    #[test]
    fn config_mismatch_is_flagged() {
        let a = RunRecord::default();
        let mut b = RunRecord::default();
        b.config.algorithm = "other".into();
        assert!(diff_records(&a, &b, DEFAULT_THRESHOLD).config_differs);
    }
}
