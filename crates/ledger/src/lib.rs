//! # tempograph-ledger — the persistent run ledger
//!
//! The trace (structured spans) and metrics (histograms/counters) layers
//! are ephemeral: everything a run learns about itself evaporates when its
//! `JobResult` is dropped. This crate makes runs durable — one
//! GoFS-framed, versioned [`RunRecord`] per job, holding:
//!
//! - the **config fingerprint** (algorithm, pattern, partitions, time
//!   range, seed, dataset, host env) that derives a deterministic run id,
//! - whole-job **aggregates** (wall/virtual/compute/msg/sync/io ns plus
//!   the deterministic traffic counts),
//! - **per-worker** and **per-timestep** timings derived from the same
//!   `TraceSink::now` readings the trace spans consume,
//! - the per-(subgraph, timestep) **compute attribution table** (see
//!   `JobConfig::with_attribution` in `tempograph-engine`),
//! - user counter totals and the canonical metrics snapshot JSON.
//!
//! Records live in a [`Ledger`] directory, one atomically-written
//! `<run-id>.tgrun` file each, and feed the `tempograph inspect` CLI:
//! `list`, `show` (human + canonical JSON), `diff` (the bench gate's
//! noise-floor comparison via [`diff_records`]), and `rebalance` — piping
//! [`RunRecord::per_subgraph_costs`] into
//! `partition::suggest_rebalance_from` so move decisions use *measured*
//! subgraph costs instead of the vertex-count proxy (the paper's §IV.D
//! loop, closed).
//!
//! Determinism: [`RunRecord::strip_nondeterminism`] zeroes the measured
//! clock fields, after which a seeded run's record encodes byte-identically
//! across executions — the property CI's inspect smoke asserts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod record;
pub mod store;

pub use diff::{
    diff_records, DeltaKind, FieldDelta, RecordDiff, DEFAULT_THRESHOLD, NOISE_FLOOR_NS,
};
pub use record::{
    AttributionEntry, ConfigFingerprint, RunAggregates, RunRecord, WorkerTiming, RECORD_MAGIC,
    RECORD_SCHEMA,
};
pub use store::{Ledger, RECORD_EXT};
