//! # tempograph-gen — synthetic time-series graph datasets
//!
//! The paper evaluates on two SNAP templates — the California Road Network
//! (CARN: ~2 M vertices, diameter 849, uniform degree ≈ 2.8) and the
//! Wikipedia Talk network (WIKI: ~2.4 M vertices, diameter 9, power-law
//! degrees) — with synthetically generated instance data (random road
//! latencies; SIR-model meme cascades). SNAP downloads are unavailable
//! offline, so this crate generates **structural analogues**:
//!
//! * [`road_network`] — a perturbed lattice: a random spanning tree of the
//!   grid plus a tunable fraction of the remaining grid edges. Connected,
//!   uniform small degree, diameter `O(√n)` — the properties the paper's
//!   evaluation leans on (tiny edge cuts, 47-timestep TDSP convergence).
//! * [`small_world`] — preferential attachment: power-law in-degrees and a
//!   very small diameter, like WIKI (4-timestep TDSP convergence, edge cuts
//!   that blow up with partition count).
//!
//! Instance generators reproduce §IV.A's two workloads:
//!
//! * [`generate_road_latencies`] — i.i.d. random travel time per edge per
//!   timestep ("no correlation between the values in space or time").
//! * [`generate_sir_tweets`] — SIR epidemic cascade of a meme hashtag with a
//!   configurable per-edge hit probability (30 % CARN / 2 % WIKI in the
//!   paper), plus background hashtag noise for the aggregation workload.
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]

pub mod churn;
pub mod instances;
pub mod presets;
pub mod rmat;
pub mod road;
pub mod smallworld;

pub use churn::{generate_topology_churn, ChurnConfig};
pub use instances::{
    generate_road_latencies, generate_sir_tweets, RoadLatencyConfig, SirConfig, LATENCY_ATTR,
    TWEETS_ATTR,
};
pub use presets::{carn_like, wiki_like, DatasetPreset};
pub use rmat::{rmat, RmatConfig};
pub use road::{road_network, RoadNetConfig};
pub use smallworld::{small_world, SmallWorldConfig};
