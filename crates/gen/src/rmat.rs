//! R-MAT recursive-matrix graph generator.
//!
//! The classic Chakrabarti–Zhan–Faloutsos generator: each edge picks its
//! endpoints by recursively descending into one of four adjacency-matrix
//! quadrants with probabilities `(a, b, c, d)`. Skewed parameters produce
//! power-law-ish graphs; used here to stress the partitioner with a third
//! topology family beyond the lattice and preferential attachment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempograph_core::{AttrType, GraphTemplate, TemplateBuilder};

/// Parameters for [`rmat`].
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the vertex count (n = 2^scale_exp).
    pub scale_exp: u32,
    /// Average edges per vertex (total edges ≈ n · edge_factor).
    pub edge_factor: usize,
    /// Quadrant probabilities; must sum to ≈ 1. Kronecker defaults
    /// (0.57, 0.19, 0.19, 0.05).
    pub probs: (f64, f64, f64, f64),
    /// Whether the template is directed.
    pub directed: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale_exp: 12,
            edge_factor: 8,
            probs: (0.57, 0.19, 0.19, 0.05),
            directed: true,
            seed: 0x4_4AA7,
        }
    }
}

/// Generate an R-MAT template (self-loops and duplicate edges are dropped,
/// so the edge count is slightly below `n · edge_factor`). Declares the
/// standard `tweets` / `latency` workload attributes.
pub fn rmat(cfg: &RmatConfig) -> GraphTemplate {
    let (a, b, c, d) = cfg.probs;
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-6 && a > 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
        "quadrant probabilities must be a distribution"
    );
    assert!(
        cfg.scale_exp >= 1 && cfg.scale_exp <= 26,
        "scale_exp out of range"
    );
    let n: u64 = 1 << cfg.scale_exp;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut b_ = TemplateBuilder::new(format!("rmat-{}", n), cfg.directed);
    b_.vertex_schema()
        .add(crate::TWEETS_ATTR, AttrType::TextList);
    b_.edge_schema().add(crate::LATENCY_ATTR, AttrType::Double);
    for v in 0..n {
        b_.add_vertex(v);
    }

    let mut seen = std::collections::HashSet::new();
    let target = n as usize * cfg.edge_factor;
    let mut eid = 0u64;
    let mut attempts = 0usize;
    while (eid as usize) < target && attempts < target * 8 {
        attempts += 1;
        let (mut lo_s, mut hi_s) = (0u64, n);
        let (mut lo_d, mut hi_d) = (0u64, n);
        while hi_s - lo_s > 1 {
            let r: f64 = rng.gen();
            let (src_hi, dst_hi) = if r < a {
                (false, false)
            } else if r < a + b {
                (false, true)
            } else if r < a + b + c {
                (true, false)
            } else {
                (true, true)
            };
            let mid_s = (lo_s + hi_s) / 2;
            let mid_d = (lo_d + hi_d) / 2;
            if src_hi {
                lo_s = mid_s;
            } else {
                hi_s = mid_s;
            }
            if dst_hi {
                lo_d = mid_d;
            } else {
                hi_d = mid_d;
            }
        }
        let (s, t) = (lo_s, lo_d);
        if s == t {
            continue;
        }
        let key = if cfg.directed {
            (s, t)
        } else {
            (s.min(t), s.max(t))
        };
        if seen.insert(key) {
            b_.add_edge(eid, s, t).expect("unique by seen-set");
            eid += 1;
        }
    }
    b_.finalize().expect("rmat template is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let g = rmat(&RmatConfig {
            scale_exp: 8,
            edge_factor: 4,
            ..Default::default()
        });
        assert_eq!(g.num_vertices(), 256);
        // Dedup/self-loop losses are bounded.
        assert!(g.num_edges() > 256 * 3 && g.num_edges() <= 256 * 4);
    }

    #[test]
    fn skewed_probs_make_hubs() {
        let g = rmat(&RmatConfig {
            scale_exp: 10,
            edge_factor: 8,
            ..Default::default()
        });
        let mut deg = vec![0usize; g.num_vertices()];
        for e in g.edges() {
            let (s, d) = g.endpoints(e);
            deg[s.idx()] += 1;
            deg[d.idx()] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let avg = deg.iter().sum::<usize>() as f64 / deg.len() as f64;
        assert!(max as f64 > 5.0 * avg, "hub expected: max {max}, avg {avg}");
    }

    #[test]
    fn deterministic() {
        let cfg = RmatConfig {
            scale_exp: 7,
            ..Default::default()
        };
        let a = rmat(&cfg);
        let b = rmat(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edges() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
        }
    }

    #[test]
    fn undirected_mode_dedups_both_directions() {
        let g = rmat(&RmatConfig {
            scale_exp: 6,
            edge_factor: 4,
            directed: false,
            ..Default::default()
        });
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            let (s, d) = g.endpoints(e);
            let key = (s.min(d), s.max(d));
            assert!(seen.insert(key), "duplicate undirected edge");
        }
    }

    #[test]
    #[should_panic(expected = "distribution")]
    fn rejects_bad_probs() {
        rmat(&RmatConfig {
            probs: (0.5, 0.5, 0.5, 0.5),
            ..Default::default()
        });
    }
}
