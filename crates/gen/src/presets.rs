//! Named dataset presets matching the paper's evaluation setup.
//!
//! The paper's graphs are ~2 M vertices; the presets default to a
//! laptop-scale analogue and accept a `scale` multiplier (the bench harness
//! reads `TEMPOGRAPH_SCALE`). Both presets declare both workload attributes
//! so each can be paired with the road-latency *and* the tweet generator,
//! exactly as §IV.A pairs CARN/WIKI with both.

use crate::road::{road_network, RoadNetConfig};
use crate::smallworld::{small_world, SmallWorldConfig};
use tempograph_core::GraphTemplate;

/// Which paper dataset a generated template stands in for.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DatasetPreset {
    /// California Road Network analogue: lattice-like, diameter `O(√n)`,
    /// uniform degree ≈ 2.8.
    Carn,
    /// Wikipedia Talk analogue: preferential attachment, power-law degrees,
    /// diameter ≲ 10.
    Wiki,
}

impl DatasetPreset {
    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::Carn => "CARN",
            DatasetPreset::Wiki => "WIKI",
        }
    }

    /// The paper's SIR hit probability for this dataset (§IV.A): 30 % for
    /// CARN, 2 % for WIKI.
    pub fn hit_prob(self) -> f64 {
        match self {
            DatasetPreset::Carn => 0.30,
            DatasetPreset::Wiki => 0.02,
        }
    }

    /// Generate this preset's template at the given scale.
    pub fn template(self, scale: f64) -> GraphTemplate {
        match self {
            DatasetPreset::Carn => carn_like(scale),
            DatasetPreset::Wiki => wiki_like(scale),
        }
    }
}

/// CARN analogue at `scale` (1.0 ≈ 10 000 vertices; vertex count scales
/// linearly with `scale`).
pub fn carn_like(scale: f64) -> GraphTemplate {
    assert!(scale > 0.0, "scale must be positive");
    let side = ((10_000.0 * scale).sqrt().round() as usize).max(2);
    road_network(&RoadNetConfig {
        width: side,
        height: side,
        extra_edge_prob: 0.4,
        seed: 0xCA_12_00,
    })
}

/// WIKI analogue at `scale` (1.0 ≈ 12 000 vertices — the paper's WIKI is
/// ~22 % larger than CARN, preserved here).
pub fn wiki_like(scale: f64) -> GraphTemplate {
    assert!(scale > 0.0, "scale must be positive");
    let n = ((12_000.0 * scale).round() as usize).max(8);
    small_world(&SmallWorldConfig {
        vertices: n,
        edges_per_vertex: 2,
        directed: false,
        seed: 0x31_7B1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carn_structure_vs_wiki_structure() {
        let carn = carn_like(0.25); // 2 500 vertices
        let wiki = wiki_like(0.25); // 3 000 vertices
        assert!(carn.num_vertices() > 2_000 && carn.num_vertices() < 3_000);
        assert!(wiki.num_vertices() >= 2_900);
        // The structural contrast that drives the paper's results:
        assert!(
            carn.approx_diameter() > 30,
            "CARN analogue must have a large diameter"
        );
        // WIKI is directed, measure over undirected structure via degree skew.
        let mut indeg = vec![0usize; wiki.num_vertices()];
        for e in wiki.edges() {
            indeg[wiki.endpoints(e).1.idx()] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        assert!(
            max > 50,
            "WIKI analogue must have hubs, max in-degree {max}"
        );
    }

    #[test]
    fn preset_metadata() {
        assert_eq!(DatasetPreset::Carn.name(), "CARN");
        assert_eq!(DatasetPreset::Wiki.name(), "WIKI");
        assert_eq!(DatasetPreset::Carn.hit_prob(), 0.30);
        assert_eq!(DatasetPreset::Wiki.hit_prob(), 0.02);
    }

    #[test]
    fn templates_declare_both_workload_attrs() {
        for preset in [DatasetPreset::Carn, DatasetPreset::Wiki] {
            let t = preset.template(0.05);
            assert!(t.edge_schema().index_of(crate::LATENCY_ATTR).is_some());
            assert!(t.vertex_schema().index_of(crate::TWEETS_ATTR).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_zero_scale() {
        carn_like(0.0);
    }
}
