//! Road-network template generator (CARN analogue).
//!
//! Construction: take a `width × height` lattice; compute a uniformly random
//! spanning tree over the grid edges (shuffled Kruskal) so the result is
//! always connected; then independently keep each remaining grid edge with
//! probability [`RoadNetConfig::extra_edge_prob`]. With the default 0.4 this
//! lands at average degree ≈ 2.8, matching CARN's 2·|E|/|V| = 2.82, while
//! the lattice embedding preserves the `O(√n)` diameter that drives the
//! paper's TDSP behaviour (the frontier crosses the network in ~47 of 50
//! timesteps).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tempograph_core::{AttrType, GraphTemplate, TemplateBuilder};

/// Parameters for [`road_network`].
#[derive(Clone, Debug)]
pub struct RoadNetConfig {
    /// Lattice width (vertices per row).
    pub width: usize,
    /// Lattice height (rows).
    pub height: usize,
    /// Probability of keeping a non-spanning-tree grid edge. 0.4 ≈ CARN's
    /// average degree of 2.8.
    pub extra_edge_prob: f64,
    /// RNG seed; the same seed always yields the same template.
    pub seed: u64,
}

impl Default for RoadNetConfig {
    fn default() -> Self {
        RoadNetConfig {
            width: 100,
            height: 100,
            extra_edge_prob: 0.4,
            seed: 0x0CA1_F0A0,
        }
    }
}

/// Minimal union-find for the spanning-tree construction.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra as usize] = rb;
        true
    }
}

/// Generate an undirected road-network template with a `latency` edge
/// attribute slot declared (values are filled per instance by
/// [`crate::generate_road_latencies`]).
pub fn road_network(cfg: &RoadNetConfig) -> GraphTemplate {
    assert!(cfg.width >= 2 && cfg.height >= 2, "lattice must be ≥ 2×2");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.width * cfg.height;
    let at = |x: usize, y: usize| (y * cfg.width + x) as u32;

    // All candidate grid edges (right + down neighbours).
    let mut candidates: Vec<(u32, u32)> = Vec::with_capacity(2 * n);
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            if x + 1 < cfg.width {
                candidates.push((at(x, y), at(x + 1, y)));
            }
            if y + 1 < cfg.height {
                candidates.push((at(x, y), at(x, y + 1)));
            }
        }
    }
    candidates.shuffle(&mut rng);

    let mut dsu = Dsu::new(n);
    let mut keep: Vec<(u32, u32)> = Vec::with_capacity(candidates.len());
    let mut rest: Vec<(u32, u32)> = Vec::with_capacity(candidates.len());
    for &(a, b) in &candidates {
        if dsu.union(a, b) {
            keep.push((a, b)); // spanning-tree edge: mandatory
        } else {
            rest.push((a, b));
        }
    }
    for &(a, b) in &rest {
        if rng.gen_bool(cfg.extra_edge_prob) {
            keep.push((a, b));
        }
    }
    // Deterministic edge ordering regardless of shuffle: sort by endpoints.
    keep.sort_unstable();

    let mut b = TemplateBuilder::new(format!("road-{}x{}", cfg.width, cfg.height), false);
    // Both workload attributes are declared so the same template serves the
    // TDSP (road latency) and MEME/HASH (tweet) generators, as in the paper
    // where CARN and WIKI are each paired with both instance generators.
    b.edge_schema().add(crate::LATENCY_ATTR, AttrType::Double);
    b.vertex_schema()
        .add(crate::TWEETS_ATTR, AttrType::TextList);
    for v in 0..n as u64 {
        b.add_vertex(v);
    }
    for (eid, &(s, d)) in keep.iter().enumerate() {
        b.add_edge(eid as u64, s as u64, d as u64)
            .expect("grid edges are unique");
    }
    b.finalize().expect("road template is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::VertexIdx;

    fn connected(g: &GraphTemplate) -> bool {
        if g.num_vertices() == 0 {
            return true;
        }
        let mut seen = vec![false; g.num_vertices()];
        let mut stack = vec![VertexIdx(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for n in g.neighbors(v) {
                if !seen[n.vertex.idx()] {
                    seen[n.vertex.idx()] = true;
                    count += 1;
                    stack.push(n.vertex);
                }
            }
        }
        count == g.num_vertices()
    }

    #[test]
    fn generates_connected_lattice() {
        let g = road_network(&RoadNetConfig {
            width: 30,
            height: 30,
            ..Default::default()
        });
        assert_eq!(g.num_vertices(), 900);
        assert!(connected(&g), "spanning tree guarantees connectivity");
    }

    #[test]
    fn average_degree_near_carn() {
        let g = road_network(&RoadNetConfig {
            width: 60,
            height: 60,
            ..Default::default()
        });
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            (2.4..3.2).contains(&avg),
            "avg degree {avg} outside CARN band"
        );
    }

    #[test]
    fn diameter_scales_with_grid() {
        let small = road_network(&RoadNetConfig {
            width: 10,
            height: 10,
            ..Default::default()
        });
        let large = road_network(&RoadNetConfig {
            width: 40,
            height: 40,
            ..Default::default()
        });
        assert!(large.approx_diameter() > small.approx_diameter());
        // A 40×40 perturbed lattice must have diameter well above a small-world graph's.
        assert!(large.approx_diameter() >= 40);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = RoadNetConfig {
            width: 12,
            height: 9,
            seed: 7,
            ..Default::default()
        };
        let a = road_network(&cfg);
        let b = road_network(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edges() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
        }
    }

    #[test]
    fn different_seed_different_graph() {
        let a = road_network(&RoadNetConfig {
            width: 20,
            height: 20,
            seed: 1,
            ..Default::default()
        });
        let b = road_network(&RoadNetConfig {
            width: 20,
            height: 20,
            seed: 2,
            ..Default::default()
        });
        // Edge sets almost surely differ.
        let ea: Vec<_> = a.edges().map(|e| a.endpoints(e)).collect();
        let eb: Vec<_> = b.edges().map(|e| b.endpoints(e)).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn declares_latency_attribute() {
        let g = road_network(&RoadNetConfig::default());
        assert!(g.edge_schema().index_of(crate::LATENCY_ATTR).is_some());
    }

    #[test]
    #[should_panic(expected = "lattice")]
    fn rejects_degenerate_grid() {
        road_network(&RoadNetConfig {
            width: 1,
            height: 5,
            ..Default::default()
        });
    }
}
