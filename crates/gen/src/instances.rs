//! Instance-data generators (paper §IV.A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tempograph_core::{GraphTemplate, TimeSeriesCollection, VertexIdx};

/// Name of the `Double` edge attribute carrying per-timestep travel time.
pub const LATENCY_ATTR: &str = "latency";

/// Name of the `TextList` vertex attribute carrying tweets per interval.
pub const TWEETS_ATTR: &str = "tweets";

/// Parameters for [`generate_road_latencies`].
#[derive(Clone, Debug)]
pub struct RoadLatencyConfig {
    /// Number of instances (the paper uses 50).
    pub timesteps: usize,
    /// Timestamp of the first instance.
    pub start_time: i64,
    /// Period δ between instances (also the TDSP idling quantum).
    pub period: i64,
    /// Minimum travel time (inclusive).
    pub min_latency: f64,
    /// Maximum travel time (exclusive).
    pub max_latency: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadLatencyConfig {
    fn default() -> Self {
        RoadLatencyConfig {
            timesteps: 50,
            start_time: 0,
            period: 300,
            min_latency: 1.0,
            max_latency: 100.0,
            seed: 0x70AD,
        }
    }
}

/// Generate i.i.d. uniform-random edge latencies per timestep — the paper's
/// "Road Data for TDSP" workload ("no correlation between the values in
/// space or time"). The template must declare a `Double` edge attribute
/// named [`LATENCY_ATTR`].
pub fn generate_road_latencies(
    template: Arc<GraphTemplate>,
    cfg: &RoadLatencyConfig,
) -> TimeSeriesCollection {
    assert!(
        cfg.max_latency > cfg.min_latency,
        "latency range must be non-empty"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut coll = TimeSeriesCollection::new(template, cfg.start_time, cfg.period);
    for _ in 0..cfg.timesteps {
        let mut g = coll.new_instance();
        {
            let lat = g
                .edge_f64_mut(LATENCY_ATTR)
                .expect("template must declare `latency: Double` on edges");
            for x in lat.iter_mut() {
                *x = rng.gen_range(cfg.min_latency..cfg.max_latency);
            }
        }
        coll.push(g)
            .expect("generator produces conforming instances");
    }
    coll
}

/// Parameters for [`generate_sir_tweets`].
#[derive(Clone, Debug)]
pub struct SirConfig {
    /// Number of instances (the paper uses 50).
    pub timesteps: usize,
    /// Timestamp of the first instance.
    pub start_time: i64,
    /// Period δ between instances.
    pub period: i64,
    /// The meme hashtag being propagated (e.g. `"#meme"`).
    pub meme: String,
    /// Per-neighbour, per-timestep infection probability — the paper's "hit
    /// probability": 0.30 for CARN, 0.02 for WIKI.
    pub hit_prob: f64,
    /// Number of initially infected (seed) vertices at t0.
    pub initial_infected: usize,
    /// Timesteps an infected vertex keeps tweeting before recovering (the
    /// SIR `I → R` transition).
    pub infectious_steps: usize,
    /// Background hashtags any vertex may tweet, for aggregation workloads.
    pub background_tags: Vec<String>,
    /// Per-vertex, per-timestep probability of a background tweet.
    pub background_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SirConfig {
    fn default() -> Self {
        SirConfig {
            timesteps: 50,
            start_time: 0,
            period: 300,
            meme: "#meme".to_string(),
            hit_prob: 0.30,
            initial_infected: 5,
            infectious_steps: 3,
            background_tags: vec!["#cats".into(), "#news".into(), "#sports".into()],
            background_rate: 0.01,
            seed: 0x51B_CAFE,
        }
    }
}

/// SIR epidemic state per vertex.
#[derive(Copy, Clone, PartialEq, Eq)]
enum State {
    Susceptible,
    /// Infected, with remaining infectious steps.
    Infected(u32),
    Recovered,
}

/// Generate the "Tweet Data" workload (§IV.A): memes propagate from vertex
/// to neighbouring vertex across instances under an SIR model with the given
/// hit probability. An infected vertex posts a tweet containing the meme in
/// every instance while infectious; background hashtags are sprinkled
/// independently. The template must declare a `TextList` vertex attribute
/// named [`TWEETS_ATTR`].
///
/// Propagation follows the *undirected* structure (a talk edge exposes both
/// endpoints), matching the paper's meme-BFS which traverses template edges.
pub fn generate_sir_tweets(template: Arc<GraphTemplate>, cfg: &SirConfig) -> TimeSeriesCollection {
    assert!((0.0..=1.0).contains(&cfg.hit_prob), "hit_prob ∉ [0,1]");
    let nv = template.num_vertices();
    assert!(cfg.initial_infected <= nv, "more seeds than vertices");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Symmetric adjacency for propagation (templates may be directed).
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for e in template.edges() {
        let (s, d) = template.endpoints(e);
        adj[s.idx()].push(d.0);
        if template.directed() {
            adj[d.idx()].push(s.0);
        }
        // Undirected templates already expose both directions through
        // `neighbors`, but we built from endpoints, so add the reverse there
        // too:
        if !template.directed() {
            adj[d.idx()].push(s.0);
        }
    }

    let mut state = vec![State::Susceptible; nv];
    // Seed vertices: deterministic sample without replacement.
    let mut seeded = 0usize;
    while seeded < cfg.initial_infected {
        let v = rng.gen_range(0..nv);
        if state[v] == State::Susceptible {
            state[v] = State::Infected(cfg.infectious_steps as u32);
            seeded += 1;
        }
    }

    let mut coll = TimeSeriesCollection::new(template.clone(), cfg.start_time, cfg.period);
    for _step in 0..cfg.timesteps {
        let mut g = coll.new_instance();
        {
            let tweets = g
                .vertex_text_list_mut(TWEETS_ATTR)
                .expect("template must declare `tweets: TextList` on vertices");
            for (v, row) in tweets.iter_mut().enumerate() {
                if matches!(state[v], State::Infected(_)) {
                    row.push(cfg.meme.clone());
                }
                if !cfg.background_tags.is_empty() && rng.gen_bool(cfg.background_rate) {
                    let tag = &cfg.background_tags[rng.gen_range(0..cfg.background_tags.len())];
                    row.push(tag.clone());
                }
            }
        }
        coll.push(g)
            .expect("generator produces conforming instances");

        // Advance SIR: infections happen between this instance and the next.
        let mut next = state.clone();
        for v in 0..nv {
            if let State::Infected(remaining) = state[v] {
                for &n in &adj[v] {
                    if state[n as usize] == State::Susceptible
                        && next[n as usize] == State::Susceptible
                        && rng.gen_bool(cfg.hit_prob)
                    {
                        next[n as usize] = State::Infected(cfg.infectious_steps as u32);
                    }
                }
                next[v] = if remaining <= 1 {
                    State::Recovered
                } else {
                    State::Infected(remaining - 1)
                };
            }
        }
        state = next;
    }
    coll
}

/// Count vertices whose tweet list contains `meme` in instance `g` — a
/// ground-truth helper shared by tests and benches.
pub fn vertices_with_meme(
    coll: &TimeSeriesCollection,
    timestep: usize,
    meme: &str,
) -> Vec<VertexIdx> {
    let g = coll.get(timestep).expect("timestep in range");
    let tweets = g.vertex_text_list(TWEETS_ATTR).expect("tweets attr");
    tweets
        .iter()
        .enumerate()
        .filter(|(_, row)| row.iter().any(|t| t == meme))
        .map(|(i, _)| VertexIdx(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::{road_network, RoadNetConfig};
    use crate::smallworld::{small_world, SmallWorldConfig};

    #[test]
    fn latencies_in_range_and_deterministic() {
        let t = Arc::new(road_network(&RoadNetConfig {
            width: 10,
            height: 10,
            ..Default::default()
        }));
        let cfg = RoadLatencyConfig {
            timesteps: 5,
            min_latency: 2.0,
            max_latency: 9.0,
            ..Default::default()
        };
        let a = generate_road_latencies(t.clone(), &cfg);
        let b = generate_road_latencies(t.clone(), &cfg);
        assert_eq!(a.len(), 5);
        for i in 0..5 {
            let la = a.get(i).unwrap().edge_f64(LATENCY_ATTR).unwrap();
            let lb = b.get(i).unwrap().edge_f64(LATENCY_ATTR).unwrap();
            assert_eq!(la, lb, "same seed ⇒ same data");
            assert!(la.iter().all(|&x| (2.0..9.0).contains(&x)));
        }
    }

    #[test]
    fn latencies_vary_across_timesteps() {
        let t = Arc::new(road_network(&RoadNetConfig {
            width: 10,
            height: 10,
            ..Default::default()
        }));
        let c = generate_road_latencies(t, &RoadLatencyConfig::default());
        let l0 = c.get(0).unwrap().edge_f64(LATENCY_ATTR).unwrap();
        let l1 = c.get(1).unwrap().edge_f64(LATENCY_ATTR).unwrap();
        assert_ne!(l0, l1);
    }

    #[test]
    fn sir_meme_monotone_cumulative_spread() {
        let t = Arc::new(road_network(&RoadNetConfig {
            width: 20,
            height: 20,
            ..Default::default()
        }));
        let cfg = SirConfig {
            timesteps: 20,
            hit_prob: 0.5,
            initial_infected: 3,
            background_rate: 0.0,
            ..Default::default()
        };
        let c = generate_sir_tweets(t, &cfg);
        // Cumulative set of ever-infected vertices only grows.
        let mut ever = std::collections::HashSet::new();
        let mut prev_size = 0;
        for i in 0..20 {
            for v in vertices_with_meme(&c, i, &cfg.meme) {
                ever.insert(v);
            }
            assert!(ever.len() >= prev_size);
            prev_size = ever.len();
        }
        assert!(
            ever.len() > cfg.initial_infected,
            "meme must actually spread"
        );
    }

    #[test]
    fn sir_zero_hit_prob_never_spreads() {
        let t = Arc::new(road_network(&RoadNetConfig {
            width: 10,
            height: 10,
            ..Default::default()
        }));
        let cfg = SirConfig {
            timesteps: 10,
            hit_prob: 0.0,
            initial_infected: 2,
            infectious_steps: 100,
            background_rate: 0.0,
            ..Default::default()
        };
        let c = generate_sir_tweets(t, &cfg);
        let initial = vertices_with_meme(&c, 0, &cfg.meme);
        assert_eq!(initial.len(), 2);
        for i in 1..10 {
            assert_eq!(vertices_with_meme(&c, i, &cfg.meme), initial);
        }
    }

    #[test]
    fn sir_recovery_silences_vertices() {
        let t = Arc::new(road_network(&RoadNetConfig {
            width: 5,
            height: 5,
            ..Default::default()
        }));
        let cfg = SirConfig {
            timesteps: 6,
            hit_prob: 0.0,
            initial_infected: 1,
            infectious_steps: 2,
            background_rate: 0.0,
            ..Default::default()
        };
        let c = generate_sir_tweets(t, &cfg);
        assert_eq!(vertices_with_meme(&c, 0, &cfg.meme).len(), 1);
        assert_eq!(vertices_with_meme(&c, 1, &cfg.meme).len(), 1);
        // Recovered after infectious_steps: no more meme tweets.
        for i in 2..6 {
            assert!(vertices_with_meme(&c, i, &cfg.meme).is_empty());
        }
    }

    #[test]
    fn sir_works_on_directed_smallworld() {
        let t = Arc::new(small_world(&SmallWorldConfig {
            vertices: 500,
            ..Default::default()
        }));
        let cfg = SirConfig {
            timesteps: 15,
            hit_prob: 0.3,
            initial_infected: 5,
            background_rate: 0.0,
            ..Default::default()
        };
        let c = generate_sir_tweets(t, &cfg);
        let mut ever = std::collections::HashSet::new();
        for i in 0..15 {
            ever.extend(vertices_with_meme(&c, i, &cfg.meme));
        }
        assert!(ever.len() > 5, "meme spreads over directed talk edges");
    }

    #[test]
    fn background_tweets_present_when_enabled() {
        let t = Arc::new(road_network(&RoadNetConfig {
            width: 15,
            height: 15,
            ..Default::default()
        }));
        let cfg = SirConfig {
            timesteps: 10,
            hit_prob: 0.0,
            initial_infected: 0,
            background_rate: 0.3,
            ..Default::default()
        };
        let c = generate_sir_tweets(t, &cfg);
        let mut any = false;
        for i in 0..10 {
            let g = c.get(i).unwrap();
            let tweets = g.vertex_text_list(TWEETS_ATTR).unwrap();
            if tweets.iter().any(|r| !r.is_empty()) {
                any = true;
            }
        }
        assert!(any, "background chatter expected");
    }

    #[test]
    #[should_panic(expected = "hit_prob")]
    fn rejects_bad_probability() {
        let t = Arc::new(road_network(&RoadNetConfig {
            width: 5,
            height: 5,
            ..Default::default()
        }));
        generate_sir_tweets(
            t,
            &SirConfig {
                hit_prob: 1.5,
                ..Default::default()
            },
        );
    }
}
