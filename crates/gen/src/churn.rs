//! Topology-churn instance generator (`isExists`).
//!
//! §II.A: *"a slow changing topology can be captured using an `isExists`
//! attribute that simulates the appearance or disappearance of vertices or
//! edges at different instances."* This generator produces instances whose
//! `isExists` vertex column flips slowly over time, modelled on the paper's
//! Facebook arithmetic (≈ 0.04 % vertex churn per day): churn is *rare*
//! relative to attribute change.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tempograph_core::{GraphTemplate, TimeSeriesCollection};

/// Parameters for [`generate_topology_churn`].
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Number of instances.
    pub timesteps: usize,
    /// Timestamp of the first instance.
    pub start_time: i64,
    /// Period δ.
    pub period: i64,
    /// Per-vertex, per-timestep probability of toggling existence.
    /// Keep small — the model's premise is slow-changing topology.
    pub flip_prob: f64,
    /// Fraction of vertices that exist at `t0`.
    pub initial_alive: f64,
    /// Vertices that must exist in every instance (e.g. a traversal source).
    pub pinned_alive: Vec<tempograph_core::VertexIdx>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            timesteps: 50,
            start_time: 0,
            period: 300,
            flip_prob: 0.002,
            initial_alive: 0.95,
            pinned_alive: Vec::new(),
            seed: 0xC4_0E_11,
        }
    }
}

/// Generate instances whose `isExists` vertex attribute churns slowly.
/// The template must declare a `Bool` vertex attribute named
/// [`GraphTemplate::IS_EXISTS`].
pub fn generate_topology_churn(
    template: Arc<GraphTemplate>,
    cfg: &ChurnConfig,
) -> TimeSeriesCollection {
    assert!((0.0..=1.0).contains(&cfg.flip_prob), "flip_prob ∉ [0,1]");
    assert!(
        (0.0..=1.0).contains(&cfg.initial_alive),
        "initial_alive ∉ [0,1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = template.num_vertices();
    let mut alive: Vec<bool> = (0..n).map(|_| rng.gen_bool(cfg.initial_alive)).collect();
    for &v in &cfg.pinned_alive {
        alive[v.idx()] = true;
    }

    let mut coll = TimeSeriesCollection::new(template.clone(), cfg.start_time, cfg.period);
    for _ in 0..cfg.timesteps {
        let mut g = coll.new_instance();
        g.vertex_bool_mut(GraphTemplate::IS_EXISTS)
            .expect("template must declare `isExists: Bool` on vertices")
            .copy_from_slice(&alive);
        coll.push(g).expect("conforming instance");

        for (i, a) in alive.iter_mut().enumerate() {
            if rng.gen_bool(cfg.flip_prob) {
                *a = !*a;
            }
            let _ = i;
        }
        for &v in &cfg.pinned_alive {
            alive[v.idx()] = true;
        }
    }
    coll
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::{AttrType, TemplateBuilder, VertexIdx};

    fn template(n: u64) -> Arc<GraphTemplate> {
        let mut b = TemplateBuilder::new("churn", false);
        b.vertex_schema()
            .add(GraphTemplate::IS_EXISTS, AttrType::Bool);
        for i in 0..n {
            b.add_vertex(i);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i, i + 1).unwrap();
        }
        Arc::new(b.finalize().unwrap())
    }

    #[test]
    fn churn_is_slow() {
        let t = template(200);
        let c = generate_topology_churn(
            t,
            &ChurnConfig {
                timesteps: 20,
                flip_prob: 0.01,
                ..Default::default()
            },
        );
        // Consecutive instances differ in only a few vertices.
        for i in 1..20 {
            let a = c
                .get(i - 1)
                .unwrap()
                .vertex_bool(GraphTemplate::IS_EXISTS)
                .unwrap();
            let b = c
                .get(i)
                .unwrap()
                .vertex_bool(GraphTemplate::IS_EXISTS)
                .unwrap();
            let diff = a.iter().zip(b).filter(|(x, y)| x != y).count();
            assert!(diff <= 15, "churn too fast: {diff} flips");
        }
    }

    #[test]
    fn pinned_vertices_always_exist() {
        let t = template(50);
        let pinned = vec![VertexIdx(0), VertexIdx(7)];
        let c = generate_topology_churn(
            t,
            &ChurnConfig {
                timesteps: 30,
                flip_prob: 0.2, // aggressive churn to stress the pin
                pinned_alive: pinned.clone(),
                ..Default::default()
            },
        );
        for i in 0..30 {
            let alive = c
                .get(i)
                .unwrap()
                .vertex_bool(GraphTemplate::IS_EXISTS)
                .unwrap();
            for &v in &pinned {
                assert!(alive[v.idx()], "pinned vertex dead at t = {i}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let t = template(40);
        let cfg = ChurnConfig {
            timesteps: 10,
            ..Default::default()
        };
        let a = generate_topology_churn(t.clone(), &cfg);
        let b = generate_topology_churn(t, &cfg);
        for i in 0..10 {
            assert_eq!(
                a.get(i)
                    .unwrap()
                    .vertex_bool(GraphTemplate::IS_EXISTS)
                    .unwrap(),
                b.get(i)
                    .unwrap()
                    .vertex_bool(GraphTemplate::IS_EXISTS)
                    .unwrap()
            );
        }
    }

    #[test]
    fn initial_alive_fraction_respected() {
        let t = template(1000);
        let c = generate_topology_churn(
            t,
            &ChurnConfig {
                timesteps: 1,
                initial_alive: 0.5,
                ..Default::default()
            },
        );
        let alive = c
            .get(0)
            .unwrap()
            .vertex_bool(GraphTemplate::IS_EXISTS)
            .unwrap();
        let frac = alive.iter().filter(|&&a| a).count() as f64 / 1000.0;
        assert!((0.4..0.6).contains(&frac), "fraction {frac}");
    }
}
