//! Small-world template generator (WIKI analogue).
//!
//! Barabási–Albert preferential attachment: vertices arrive one at a time
//! and attach [`SmallWorldConfig::edges_per_vertex`] edges to existing
//! vertices sampled proportionally to degree (implemented with the standard
//! repeated-endpoints trick). The result has a power-law degree tail, a tiny
//! diameter and — crucial for the paper's Table 2 reproduction — edge cuts
//! that grow steeply with partition count, unlike the road network.
//!
//! The template is built **directed** (WIKI is a directed talk network;
//! new user → existing user), but because every vertex attaches to an
//! earlier one the underlying undirected graph is connected.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempograph_core::{AttrType, GraphTemplate, TemplateBuilder};

/// Parameters for [`small_world`].
#[derive(Clone, Debug)]
pub struct SmallWorldConfig {
    /// Total vertex count.
    pub vertices: usize,
    /// Edges attached by each arriving vertex (m in BA). WIKI's
    /// |E|/|V| ≈ 2.1, so the default is 2.
    pub edges_per_vertex: usize,
    /// Whether the template is directed (new user → existing user). The
    /// WIKI preset uses `false`: the paper's algorithms treat talk edges as
    /// plain connectivity ("the unweighted edges show connectivity between
    /// users", §III.B).
    pub directed: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmallWorldConfig {
    fn default() -> Self {
        SmallWorldConfig {
            vertices: 10_000,
            edges_per_vertex: 2,
            directed: true,
            seed: 0x51CA_11ED,
        }
    }
}

/// Generate a directed small-world template with a `tweets` vertex
/// attribute slot declared (filled per instance by
/// [`crate::generate_sir_tweets`]).
pub fn small_world(cfg: &SmallWorldConfig) -> GraphTemplate {
    assert!(
        cfg.vertices > cfg.edges_per_vertex && cfg.edges_per_vertex >= 1,
        "need more vertices than edges_per_vertex ≥ 1"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = cfg.edges_per_vertex;

    let mut b = TemplateBuilder::new(format!("smallworld-{}", cfg.vertices), cfg.directed);
    // Both workload attributes, as for `road_network`.
    b.vertex_schema()
        .add(crate::TWEETS_ATTR, AttrType::TextList);
    b.edge_schema().add(crate::LATENCY_ATTR, AttrType::Double);
    for v in 0..cfg.vertices as u64 {
        b.add_vertex(v);
    }

    // Repeated-endpoints list: vertex v appears deg(v) times; preferential
    // sampling is a uniform draw from this list.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * m * cfg.vertices);
    // Seed clique over the first m+1 vertices.
    let mut eid: u64 = 0;
    for i in 0..=(m as u32) {
        for j in 0..i {
            b.add_edge(eid, i as u64, j as u64).expect("unique");
            eid += 1;
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (m as u32 + 1)..cfg.vertices as u32 {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0usize;
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 64 * m {
                // Degenerate corner (tiny graphs): fall back to uniform.
                let t = rng.gen_range(0..v);
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
        }
        for t in chosen {
            b.add_edge(eid, v as u64, t as u64).expect("unique");
            eid += 1;
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.finalize().expect("small-world template is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::VertexIdx;

    fn undirected_connected(g: &GraphTemplate) -> bool {
        // Build symmetric adjacency on the fly.
        let mut adj = vec![Vec::new(); g.num_vertices()];
        for e in g.edges() {
            let (s, d) = g.endpoints(e);
            adj[s.idx()].push(d);
            adj[d.idx()].push(s);
        }
        let mut seen = vec![false; g.num_vertices()];
        let mut stack = vec![VertexIdx(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &n in &adj[v.idx()] {
                if !seen[n.idx()] {
                    seen[n.idx()] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == g.num_vertices()
    }

    #[test]
    fn size_and_connectivity() {
        let g = small_world(&SmallWorldConfig {
            vertices: 2000,
            ..Default::default()
        });
        assert_eq!(g.num_vertices(), 2000);
        // |E| ≈ m·n
        assert!(g.num_edges() >= 2 * (2000 - 3));
        assert!(undirected_connected(&g));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = small_world(&SmallWorldConfig {
            vertices: 5000,
            ..Default::default()
        });
        // In-degree skew: compute max in-degree vs average.
        let mut indeg = vec![0usize; g.num_vertices()];
        for e in g.edges() {
            let (_, d) = g.endpoints(e);
            indeg[d.idx()] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        let avg = indeg.iter().sum::<usize>() as f64 / indeg.len() as f64;
        assert!(
            max as f64 > 15.0 * avg,
            "power-law hub expected: max {max}, avg {avg}"
        );
    }

    #[test]
    fn diameter_is_small() {
        // approx_diameter uses out-neighbours only on directed templates;
        // for a WIKI-like reachability check we assert on the undirected
        // structure instead via a manual double sweep over symmetric adjacency.
        let g = small_world(&SmallWorldConfig {
            vertices: 5000,
            ..Default::default()
        });
        let mut adj = vec![Vec::new(); g.num_vertices()];
        for e in g.edges() {
            let (s, d) = g.endpoints(e);
            adj[s.idx()].push(d);
            adj[d.idx()].push(s);
        }
        let bfs = |src: usize| -> usize {
            let mut dist = vec![usize::MAX; adj.len()];
            let mut q = std::collections::VecDeque::new();
            dist[src] = 0;
            q.push_back(src);
            let mut far = 0;
            while let Some(u) = q.pop_front() {
                for &n in &adj[u] {
                    if dist[n.idx()] == usize::MAX {
                        dist[n.idx()] = dist[u] + 1;
                        far = far.max(dist[n.idx()]);
                        q.push_back(n.idx());
                    }
                }
            }
            far
        };
        let d = bfs(0);
        assert!(d <= 12, "small-world diameter should be tiny, got {d}");
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = SmallWorldConfig {
            vertices: 500,
            seed: 99,
            ..Default::default()
        };
        let a = small_world(&cfg);
        let b = small_world(&cfg);
        let ea: Vec<_> = a.edges().map(|e| a.endpoints(e)).collect();
        let eb: Vec<_> = b.edges().map(|e| b.endpoints(e)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn declares_tweets_attribute() {
        let g = small_world(&SmallWorldConfig {
            vertices: 100,
            ..Default::default()
        });
        assert!(g.vertex_schema().index_of(crate::TWEETS_ATTR).is_some());
        assert!(g.directed());
    }

    #[test]
    #[should_panic(expected = "need more vertices")]
    fn rejects_degenerate_config() {
        small_world(&SmallWorldConfig {
            vertices: 2,
            edges_per_vertex: 2,
            ..Default::default()
        });
    }
}
