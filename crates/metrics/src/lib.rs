//! # tempograph-metrics — workspace metrics registry
//!
//! A std-only, dependency-free metrics subsystem mirroring the counter /
//! gauge / histogram taxonomy that Pregel-family systems expose to
//! operators, adapted to the workspace's deterministic-execution rules:
//!
//! * **No clock reads.** This crate never consults a clock (lint rule D02).
//!   Timing instruments are fed durations *derived from the same
//!   [`TraceSink::now`] readings the trace spans consume*, so trace and
//!   metrics agree exactly — asserted in `tests/trace_integration.rs`.
//! * **Deterministic ordering.** The registry is keyed by a [`BTreeMap`]
//!   over `(name, sorted labels)` (lint rule D01): snapshots, Prometheus
//!   exposition, and JSON output are byte-stable for a given set of
//!   observations.
//! * **Shard-merge insensitive.** Histograms are fixed-size log2 bucket
//!   arrays; merging per-worker shards in any order yields identical
//!   buckets, sums, and quantiles (property-tested).
//! * **Allocation-free recording.** [`Histogram::record`] and counter
//!   bumps on pre-created instruments touch only inline state; the engine's
//!   superstep hot path stays allocation-free when metrics are disabled
//!   *and* allocation-bounded when enabled (see `tests/metrics_overhead.rs`
//!   at the workspace root).
//!
//! [`TraceSink::now`]: ../tempograph_trace/struct.TraceSink.html#method.now
//! [`BTreeMap`]: std::collections::BTreeMap

#![forbid(unsafe_code)]

mod expose;
mod histogram;
pub mod json;
mod registry;

pub use histogram::{Histogram, BUCKETS};
pub use registry::{Metric, MetricEntry, MetricKey, Registry, Snapshot};

/// `num / den`, guarded against a zero denominator: returns `0.0` instead
/// of `NaN`/`Inf` so ratio gauges (cache hit rate, cut fraction, …) are
/// always finite and JSON-representable.
#[must_use]
pub fn ratio_or_zero(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::ratio_or_zero;

    #[test]
    fn ratio_guards_zero_denominator() {
        assert_eq!(ratio_or_zero(5, 0), 0.0);
        assert_eq!(ratio_or_zero(0, 0), 0.0);
        assert!(ratio_or_zero(5, 0).is_finite());
        assert_eq!(ratio_or_zero(1, 2), 0.5);
        assert_eq!(ratio_or_zero(3, 3), 1.0);
    }
}
