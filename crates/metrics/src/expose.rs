//! Text exposition: Prometheus format and a human top-N summary.

use std::fmt::Write as _;

use crate::histogram::Histogram;
use crate::registry::{Metric, MetricEntry, MetricKey, Snapshot};

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(key: &MetricKey, extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn write_histogram(out: &mut String, key: &MetricKey, h: &Histogram) {
    // Cumulative `le` buckets up to the highest populated bucket; the
    // mandatory `+Inf` bucket carries the total count.
    let mut cum = 0u64;
    let top = h.buckets().iter().rposition(|&c| c != 0).unwrap_or(0);
    for (idx, &c) in h.buckets().iter().enumerate().take(top + 1) {
        cum += c;
        let (_, high) = Histogram::bucket_bounds(idx);
        let _ = writeln!(
            out,
            "{}_bucket{} {cum}",
            key.name,
            label_block(key, Some(("le", high.to_string())))
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        key.name,
        label_block(key, Some(("le", "+Inf".to_string()))),
        h.count()
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        key.name,
        label_block(key, None),
        h.sum()
    );
    let _ = writeln!(
        out,
        "{}_count{} {}",
        key.name,
        label_block(key, None),
        h.count()
    );
}

impl Snapshot {
    /// Render the snapshot in the Prometheus text exposition format
    /// (`# TYPE` lines, cumulative `le` buckets, `_sum`/`_count` series).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for entry in &self.metrics {
            if last_name != Some(entry.key.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", entry.key.name, type_of(&entry.value));
                last_name = Some(entry.key.name.as_str());
            }
            match &entry.value {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{}{} {c}",
                        entry.key.name,
                        label_block(&entry.key, None)
                    );
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {g:?}",
                        entry.key.name,
                        label_block(&entry.key, None)
                    );
                }
                Metric::Histogram(h) => write_histogram(&mut out, &entry.key, h),
            }
        }
        out
    }

    /// Render a human-readable summary: the top `top_n` counters by value
    /// and the top `top_n` histograms by total time/volume, with quantiles.
    #[must_use]
    pub fn to_summary(&self, top_n: usize) -> String {
        let mut counters: Vec<(&MetricEntry, u64)> = Vec::new();
        let mut histograms: Vec<(&MetricEntry, &Histogram)> = Vec::new();
        for entry in &self.metrics {
            match &entry.value {
                Metric::Counter(c) => counters.push((entry, *c)),
                Metric::Histogram(h) => histograms.push((entry, h)),
                Metric::Gauge(_) => {}
            }
        }
        counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.key.cmp(&b.0.key)));
        histograms.sort_by(|a, b| {
            b.1.sum()
                .cmp(&a.1.sum())
                .then_with(|| a.0.key.cmp(&b.0.key))
        });

        let mut out = String::new();
        let _ = writeln!(out, "== top {top_n} counters ==");
        for (entry, value) in counters.iter().take(top_n) {
            let _ = writeln!(
                out,
                "{:<48} {value}",
                format!("{}{}", entry.key.name, label_block(&entry.key, None))
            );
        }
        let _ = writeln!(out, "== top {top_n} histograms ==");
        for (entry, h) in histograms.iter().take(top_n) {
            let _ = writeln!(
                out,
                "{:<48} count={} sum={} p50={} p95={} p99={} max={}",
                format!("{}{}", entry.key.name, label_block(&entry.key, None)),
                h.count(),
                h.sum(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max()
            );
        }
        for entry in &self.metrics {
            if let Metric::Gauge(g) = &entry.value {
                let _ = writeln!(
                    out,
                    "{:<48} {g:?}",
                    format!("{}{}", entry.key.name, label_block(&entry.key, None))
                );
            }
        }
        out
    }
}

fn type_of(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn prometheus_exposition_shape() {
        let mut r = Registry::new();
        r.counter_add("tempograph_msgs_total", &[("algo", "HASH")], 7);
        r.gauge_set("tempograph_hit_rate", &[], 0.5);
        r.observe("tempograph_compute_ns", &[], 100);
        r.observe("tempograph_compute_ns", &[], 3000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE tempograph_msgs_total counter"));
        assert!(text.contains("tempograph_msgs_total{algo=\"HASH\"} 7"));
        assert!(text.contains("# TYPE tempograph_hit_rate gauge"));
        assert!(text.contains("tempograph_hit_rate 0.5"));
        assert!(text.contains("# TYPE tempograph_compute_ns histogram"));
        assert!(text.contains("tempograph_compute_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("tempograph_compute_ns_sum 3100"));
        assert!(text.contains("tempograph_compute_ns_count 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = Registry::new();
        r.counter_add("m", &[("path", "a\"b\\c\nd")], 1);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("m{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn summary_is_ranked() {
        let mut r = Registry::new();
        r.counter_add("small", &[], 1);
        r.counter_add("big", &[], 100);
        r.observe("lat_ns", &[], 42);
        let s = r.snapshot().to_summary(1);
        let big_at = s.find("big").unwrap();
        assert!(s.find("small").is_none() || s.find("small").unwrap() > big_at);
        assert!(s.contains("p95="));
    }
}
