//! A minimal JSON value model, writer, and parser (std-only; the build
//! environment has no registry access, so no serde).
//!
//! Numbers are kept as their **raw source tokens** (`Value::Num(String)`),
//! which makes `u64` counters round-trip losslessly — `u64::MAX` would not
//! survive an `f64` detour. Floats are written with Rust's shortest
//! round-trip formatting (`{:?}`), so gauges survive a parse/write cycle
//! bit-for-bit. Objects preserve insertion order as a `Vec` of pairs; all
//! producers in this workspace emit deterministically ordered keys.

use std::fmt::Write as _;

use crate::histogram::{Histogram, BUCKETS};
use crate::registry::{Metric, MetricEntry, MetricKey, Snapshot};

/// A parsed or under-construction JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw token (lossless for `u64`).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A number value from a `u64` (lossless).
    #[must_use]
    pub fn u64(v: u64) -> Value {
        Value::Num(v.to_string())
    }

    /// A number value from an `f64` using shortest round-trip formatting.
    /// Non-finite inputs become `0.0` (JSON has no NaN/Inf).
    #[must_use]
    pub fn f64(v: f64) -> Value {
        if v.is_finite() {
            Value::Num(format!("{v:?}"))
        } else {
            Value::Num("0.0".to_string())
        }
    }

    /// A string value.
    #[must_use]
    pub fn str(v: &str) -> Value {
        Value::Str(v.to_string())
    }

    /// Interpret this value as `u64` if possible.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// Interpret this value as `f64` if possible.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// Borrow this value as a string if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow this value as an array if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key if this value is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    #[must_use]
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serialize with two-space indentation (for committed report files).
    #[must_use]
    pub fn write_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(tok) => out.push_str(tok),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty_into(&self, out: &mut String, indent: usize) {
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_into(out),
        }
    }

    /// Parse a JSON document. Returns a readable error with a byte offset
    /// on malformed input.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Value::parse`]: a message plus the byte offset it occurred
/// at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        Ok(Value::Num(token.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: decode the low half if the
                            // high half announces one.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot <-> JSON
// ---------------------------------------------------------------------------

impl Snapshot {
    /// Build the canonical JSON [`Value`] for this snapshot.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let metrics = self
            .metrics
            .iter()
            .map(|entry| {
                let mut obj = vec![
                    ("name".to_string(), Value::str(&entry.key.name)),
                    (
                        "labels".to_string(),
                        Value::Obj(
                            entry
                                .key
                                .labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::str(v)))
                                .collect(),
                        ),
                    ),
                ];
                match &entry.value {
                    Metric::Counter(c) => {
                        obj.push(("type".to_string(), Value::str("counter")));
                        obj.push(("value".to_string(), Value::u64(*c)));
                    }
                    Metric::Gauge(g) => {
                        obj.push(("type".to_string(), Value::str("gauge")));
                        obj.push(("value".to_string(), Value::f64(*g)));
                    }
                    Metric::Histogram(h) => {
                        obj.push(("type".to_string(), Value::str("histogram")));
                        obj.push(("count".to_string(), Value::u64(h.count())));
                        obj.push(("sum".to_string(), Value::u64(h.sum())));
                        obj.push(("min".to_string(), Value::u64(h.min())));
                        obj.push(("max".to_string(), Value::u64(h.max())));
                        // Sparse bucket encoding: [index, count] pairs.
                        obj.push((
                            "buckets".to_string(),
                            Value::Arr(
                                h.buckets()
                                    .iter()
                                    .enumerate()
                                    .filter(|(_, &c)| c != 0)
                                    .map(|(i, &c)| {
                                        Value::Arr(vec![Value::u64(i as u64), Value::u64(c)])
                                    })
                                    .collect(),
                            ),
                        ));
                    }
                }
                Value::Obj(obj)
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::str("tempograph-metrics/v1")),
            ("metrics".to_string(), Value::Arr(metrics)),
        ])
    }

    /// Serialize to compact canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// Rebuild a snapshot from its JSON form (inverse of [`Snapshot::to_json`]).
    pub fn from_json(text: &str) -> Result<Snapshot, JsonError> {
        Self::from_value(&Value::parse(text)?)
    }

    /// Rebuild a snapshot from an already-parsed [`Value`].
    pub fn from_value(value: &Value) -> Result<Snapshot, JsonError> {
        let fail = |msg: &str| JsonError {
            message: msg.to_string(),
            offset: 0,
        };
        let metrics = value
            .get("metrics")
            .and_then(Value::as_arr)
            .ok_or_else(|| fail("missing 'metrics' array"))?;
        let mut entries = Vec::with_capacity(metrics.len());
        for m in metrics {
            let name = m
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("metric missing 'name'"))?;
            let labels = match m.get("labels") {
                Some(Value::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| {
                        Ok((
                            k.clone(),
                            v.as_str()
                                .ok_or_else(|| fail("label not a string"))?
                                .to_string(),
                        ))
                    })
                    .collect::<Result<Vec<_>, JsonError>>()?,
                _ => Vec::new(),
            };
            let kind = m
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("metric missing 'type'"))?;
            let metric = match kind {
                "counter" => Metric::Counter(
                    m.get("value")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| fail("counter missing 'value'"))?,
                ),
                "gauge" => Metric::Gauge(
                    m.get("value")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| fail("gauge missing 'value'"))?,
                ),
                "histogram" => {
                    let count = m
                        .get("count")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| fail("histogram missing 'count'"))?;
                    let sum = m
                        .get("sum")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| fail("histogram missing 'sum'"))?;
                    let min = m.get("min").and_then(Value::as_u64).unwrap_or(0);
                    let max = m.get("max").and_then(Value::as_u64).unwrap_or(0);
                    let mut buckets = [0u64; BUCKETS];
                    for pair in m.get("buckets").and_then(Value::as_arr).unwrap_or(&[]) {
                        let items = pair.as_arr().ok_or_else(|| fail("bad bucket pair"))?;
                        let idx = items
                            .first()
                            .and_then(Value::as_u64)
                            .ok_or_else(|| fail("bad bucket index"))?
                            as usize;
                        let c = items
                            .get(1)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| fail("bad bucket count"))?;
                        if idx >= BUCKETS {
                            return Err(fail("bucket index out of range"));
                        }
                        buckets[idx] = c;
                    }
                    Metric::Histogram(Box::new(Histogram::from_parts(
                        buckets, count, sum, min, max,
                    )))
                }
                other => return Err(fail(&format!("unknown metric type '{other}'"))),
            };
            let mut sorted_labels = labels;
            sorted_labels.sort();
            entries.push(MetricEntry {
                key: MetricKey {
                    name: name.to_string(),
                    labels: sorted_labels,
                },
                value: metric,
            });
        }
        Ok(Snapshot { metrics: entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn value_round_trip() {
        let text = r#"{"a":[1,2.5,-3],"b":"x\ny","c":true,"d":null,"e":{}}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(Value::parse(&v.write()).unwrap(), v);
    }

    #[test]
    fn u64_max_survives() {
        let v = Value::u64(u64::MAX);
        let parsed = Value::parse(&v.write()).unwrap();
        assert_eq!(parsed.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Value::parse(r#""aA😀b""#).unwrap();
        assert_eq!(v, Value::Str("aA\u{1F600}b".to_string()));
    }

    #[test]
    fn malformed_input_reports_offset() {
        let err = Value::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut r = Registry::new();
        r.counter_add("c", &[("p", "0")], u64::MAX);
        r.gauge_set("g", &[], 0.1 + 0.2);
        r.observe("h", &[], 0);
        r.observe("h", &[], 12345);
        let snap = r.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn pretty_output_parses_back() {
        let mut r = Registry::new();
        r.counter_add("c", &[], 1);
        let v = r.snapshot().to_value();
        assert_eq!(Value::parse(&v.write_pretty()).unwrap(), v);
    }
}
