//! Fixed-size log2-bucketed histogram.
//!
//! Bucket `0` holds the value `0`; bucket `i` (1 ≤ i ≤ 63) holds values in
//! `[2^(i-1), 2^i)`; bucket `64` holds `[2^63, u64::MAX]`. The layout is a
//! plain inline array, so recording never allocates and merging shards is
//! element-wise addition — associative and commutative, which is what makes
//! per-worker shard folding order-insensitive.

/// Number of log2 buckets (`0`, one per power of two, plus the top bucket).
pub const BUCKETS: usize = 65;

/// A mergeable log2-bucketed histogram of `u64` observations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: `0` for zero, else `64 - leading_zeros`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `[low, high]` value range covered by bucket `idx`.
    #[must_use]
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        match idx {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            i => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Record one observation. Allocation-free; sums saturate rather than
    /// wrap so merge order cannot change the outcome.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another shard into this one (element-wise; order-insensitive).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`0` when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (`0` when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, `0.0` when empty (never NaN).
    #[must_use]
    pub fn mean(&self) -> f64 {
        crate::ratio_or_zero(self.sum, self.count)
    }

    /// Raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by walking the
    /// cumulative bucket counts and interpolating linearly inside the
    /// target bucket. Depends only on the merged bucket contents, so it is
    /// insensitive to record and merge order. Returns `0` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cum: u64 = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (low, high) = Self::bucket_bounds(idx);
                let frac = (rank - cum) as f64 / c as f64;
                let est = low as f64 + (high - low) as f64 * frac;
                return (est as u64).clamp(self.min(), self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Rebuild a histogram from serialized parts (JSON snapshot import).
    #[must_use]
    pub fn from_parts(buckets: [u64; BUCKETS], count: u64, sum: u64, min: u64, max: u64) -> Self {
        Histogram {
            buckets,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for idx in 0..BUCKETS {
            let (low, high) = Histogram::bucket_bounds(idx);
            assert_eq!(Histogram::bucket_index(low), idx);
            assert_eq!(Histogram::bucket_index(high), idx);
        }
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::new();
        for v in [1u64, 5, 9, 120, 4096, 70_000] {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max());
        assert!(h.quantile(0.0) >= h.min());
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 77, 1024] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 9, 500_000] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        let mut merged_rev = b;
        merged_rev.merge(&a);
        assert_eq!(merged_rev, all);
    }
}
