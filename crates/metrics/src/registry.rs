//! The metrics registry: named, labeled instruments in deterministic order.

use std::collections::BTreeMap;

use crate::histogram::Histogram;

/// Identity of an instrument: a name plus a *sorted* label set. Sorting the
/// labels at construction time keeps every downstream iteration (Prometheus
/// text, JSON, summaries) deterministic (lint rule D01).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Instrument name, e.g. `tempograph_superstep_compute_ns`.
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key, sorting the labels.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// One instrument's value.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// Monotonic count of events.
    Counter(u64),
    /// Point-in-time value (always finite; non-finite sets are coerced
    /// to `0.0`).
    Gauge(f64),
    /// Log2-bucketed distribution. Boxed: the inline bucket array is
    /// ~0.5 KiB, and keeping the enum small keeps counter/gauge entries —
    /// the overwhelming majority — cheap to store and clone.
    Histogram(Box<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of instruments keyed by `(name, labels)`, stored in a
/// `BTreeMap` so iteration order — and therefore every export format — is
/// deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<MetricKey, Metric>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Number of registered instruments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when no instrument has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Add `delta` to a counter, creating it at zero on first touch.
    ///
    /// # Panics
    /// If the key already names a gauge or histogram (programmer error).
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert(Metric::Counter(0));
        match entry {
            Metric::Counter(c) => *c = c.saturating_add(delta),
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Set a gauge. Non-finite values are coerced to `0.0` so snapshots
    /// stay JSON-representable.
    ///
    /// # Panics
    /// If the key already names a counter or histogram (programmer error).
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert(Metric::Gauge(0.0));
        match entry {
            Metric::Gauge(g) => *g = value,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Record one observation into a histogram, creating it on first touch.
    ///
    /// # Panics
    /// If the key already names a counter or gauge (programmer error).
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Metric::Histogram(Box::default()));
        match entry {
            Metric::Histogram(h) => h.record(value),
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Fold a pre-aggregated histogram shard into the named instrument.
    ///
    /// # Panics
    /// If the key already names a counter or gauge (programmer error).
    pub fn merge_histogram(&mut self, name: &str, labels: &[(&str, &str)], shard: &Histogram) {
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Metric::Histogram(Box::default()));
        match entry {
            Metric::Histogram(h) => h.merge(shard),
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Merge another registry into this one: counters add, histograms
    /// merge, gauges take the incoming value (last write wins).
    pub fn merge(&mut self, other: &Registry) {
        for (key, value) in &other.metrics {
            match self.metrics.entry(key.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(value.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    match (slot.get_mut(), value) {
                        (Metric::Counter(a), Metric::Counter(b)) => *a = a.saturating_add(*b),
                        (Metric::Gauge(a), Metric::Gauge(b)) => *a = *b,
                        (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b),
                        (mine, theirs) => panic!(
                            "metric {} kind mismatch on merge: {} vs {}",
                            key.name,
                            mine.kind(),
                            theirs.kind()
                        ),
                    }
                }
            }
        }
    }

    /// Look up an instrument by name + labels.
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        self.metrics.get(&MetricKey::new(name, labels))
    }

    /// Take a point-in-time, deterministically ordered snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            metrics: self
                .metrics
                .iter()
                .map(|(key, value)| MetricEntry {
                    key: key.clone(),
                    value: value.clone(),
                })
                .collect(),
        }
    }
}

/// One entry of a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// The instrument's identity.
    pub key: MetricKey,
    /// Its value at snapshot time.
    pub value: Metric,
}

/// An immutable, ordered snapshot of a [`Registry`], ready for export.
/// Entries are sorted by `(name, labels)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Snapshot entries in deterministic `(name, labels)` order.
    pub metrics: Vec<MetricEntry>,
}

impl Snapshot {
    /// Look up an entry by name + labels.
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        let key = MetricKey::new(name, labels);
        self.metrics.iter().find(|e| e.key == key).map(|e| &e.value)
    }

    /// Sum of all counters sharing `name` across label sets.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|e| e.key.name == name)
            .map(|e| match &e.value {
                Metric::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_sorted_for_identity() {
        let a = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        let b = MetricKey::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut r1 = Registry::new();
        r1.counter_add("msgs", &[("p", "0")], 3);
        r1.counter_add("msgs", &[("p", "0")], 4);
        let mut r2 = Registry::new();
        r2.counter_add("msgs", &[("p", "0")], 5);
        r2.counter_add("msgs", &[("p", "1")], 1);
        r1.merge(&r2);
        assert_eq!(r1.get("msgs", &[("p", "0")]), Some(&Metric::Counter(12)));
        assert_eq!(r1.get("msgs", &[("p", "1")]), Some(&Metric::Counter(1)));
        assert_eq!(r1.snapshot().counter_total("msgs"), 13);
    }

    #[test]
    fn gauge_rejects_non_finite() {
        let mut r = Registry::new();
        r.gauge_set("rate", &[], f64::NAN);
        assert_eq!(r.get("rate", &[]), Some(&Metric::Gauge(0.0)));
        r.gauge_set("rate", &[], f64::INFINITY);
        assert_eq!(r.get("rate", &[]), Some(&Metric::Gauge(0.0)));
        r.gauge_set("rate", &[], 0.75);
        assert_eq!(r.get("rate", &[]), Some(&Metric::Gauge(0.75)));
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let mut r = Registry::new();
        r.counter_add("zed", &[], 1);
        r.counter_add("alpha", &[("k", "2")], 1);
        r.counter_add("alpha", &[("k", "1")], 1);
        let names: Vec<String> = r
            .snapshot()
            .metrics
            .iter()
            .map(|e| {
                format!(
                    "{}{}",
                    e.key.name,
                    e.key
                        .labels
                        .iter()
                        .map(|(k, v)| format!("[{k}={v}]"))
                        .collect::<String>()
                )
            })
            .collect();
        assert_eq!(names, vec!["alpha[k=1]", "alpha[k=2]", "zed"]);
    }
}
