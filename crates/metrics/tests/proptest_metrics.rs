//! Property-based tests for the metrics subsystem (ISSUE 5 satellite):
//! histogram record/merge must be order- and shard-insensitive, and JSON
//! snapshots must round-trip losslessly.

use proptest::prelude::*;
use tempograph_metrics::{Histogram, Registry, Snapshot};

/// Values spanning every bucket regime: zero, small, mid, and huge.
fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![Just(0u64), 0u64..100, 0u64..1_000_000, any::<u64>(),]
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(arb_value(), 0..200)
}

proptest! {
    /// Recording the same multiset of values in any order yields the same
    /// histogram, and splitting it into shards merged in either order
    /// yields the same buckets, count, sum, min, max, and quantiles.
    #[test]
    fn histogram_is_order_and_shard_insensitive(
        values in arb_values(),
        split in 0usize..200,
        qs in proptest::collection::vec((0u32..=1000).prop_map(|m| f64::from(m) / 1000.0), 1..4),
    ) {
        let split = split.min(values.len());

        let mut sequential = Histogram::new();
        for &v in &values {
            sequential.record(v);
        }

        let mut reversed = Histogram::new();
        for &v in values.iter().rev() {
            reversed.record(v);
        }
        prop_assert_eq!(&reversed, &sequential);

        let mut shard_a = Histogram::new();
        let mut shard_b = Histogram::new();
        for &v in &values[..split] {
            shard_a.record(v);
        }
        for &v in &values[split..] {
            shard_b.record(v);
        }
        let mut ab = shard_a.clone();
        ab.merge(&shard_b);
        let mut ba = shard_b.clone();
        ba.merge(&shard_a);
        prop_assert_eq!(&ab, &sequential);
        prop_assert_eq!(&ba, &sequential);
        for q in qs {
            prop_assert_eq!(ab.quantile(q), sequential.quantile(q));
            prop_assert_eq!(ba.quantile(q), sequential.quantile(q));
        }
    }

    /// Quantile estimates are monotone in q and bounded by [min, max].
    #[test]
    fn quantiles_are_monotone_and_bounded(values in arb_values()) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0u64;
        for i in 0..=10 {
            let q = f64::from(i) / 10.0;
            let est = h.quantile(q);
            prop_assert!(est >= prev, "quantile not monotone at q={q}");
            prop_assert!(est >= h.min() || h.count() == 0);
            prop_assert!(est <= h.max());
            prev = est;
        }
    }

    /// A registry snapshot serialized to JSON and parsed back is equal to
    /// the original — counters (full u64 range), gauges, and histograms.
    #[test]
    fn json_snapshot_round_trips(
        counters in proptest::collection::vec(("[a-z_]{1,12}", any::<u64>()), 0..8),
        gauges in proptest::collection::vec(
            ("[a-z_]{1,12}", any::<f64>().prop_filter("finite", |x| x.is_finite())),
            0..4,
        ),
        hist_values in arb_values(),
        label in "[a-zA-Z0-9_./\\- ]{0,12}",
    ) {
        let mut r = Registry::new();
        for (name, v) in &counters {
            r.counter_add(&format!("c_{name}"), &[("label", label.as_str())], *v);
        }
        for (name, v) in &gauges {
            r.gauge_set(&format!("g_{name}"), &[], *v);
        }
        for &v in &hist_values {
            r.observe("h_latency", &[("shard", "0")], v);
        }
        let snap = r.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        prop_assert_eq!(back, snap);
    }
}
