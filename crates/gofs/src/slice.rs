//! The slice-file format.
//!
//! One slice file holds the projected instance data for one **bin** of up to
//! `binning` subgraphs across one **pack** of up to `packing` consecutive
//! timesteps — the paper's "temporal packing of 10 and subgraph binning of
//! 5" (§IV.A). Reading a slice file is cheap (header + column directory);
//! the per-(subgraph, timestep) instances **materialize lazily** on first
//! access, so a job touching 2 of 10 timesteps in a pack never decodes the
//! other 8. What remains of the paper's Fig. 6 every-`packing`-timesteps
//! spike is the file read itself plus the base-snapshot decode.
//!
//! # Version-2 payload layout (columnar, delta-encoded)
//!
//! ```text
//! u16  partition          u32 bin, pack, t_start, n_timesteps, n_sg
//! u32  sg_id × n_sg       i64 timestamp × n_timesteps
//! u32  n_vertex_cols      u32 n_edge_cols
//! u64  offset × (n_sg · n_timesteps + 1)      -- the column directory
//! blocks …                                    -- offsets index into this
//! ```
//!
//! Block `(sg, 0)` is the subgraph's **base snapshot**: every vertex
//! column then every edge column, full `put_column` encoding. Block
//! `(sg, toff > 0)` stores one *delta record per column* against the base
//! (not chained!), so materializing any timestep needs only the base plus
//! one block. Each delta is sparse (varint change count, delta-coded row
//! indices, gathered values) unless re-encoding the whole column is
//! smaller, in which case it falls back to dense — see
//! [`codec::put_delta_column`].
//!
//! Version-1 files (row-major, eagerly decoded) still load via the same
//! [`decode_slice`] entry point.

use crate::codec::{self, frame, frame_v1, unframe_versioned};
use crate::error::{GofsError, Result};
use crate::view::SubgraphInstance;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::{Arc, OnceLock};
use tempograph_core::kernels::{self, TemporalAgg};
use tempograph_core::Column;
use tempograph_partition::SubgraphId;

const SLICE_MAGIC: [u8; 4] = *b"GFSL";

/// Identifies one slice within a partition's directory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceKey {
    /// Bin index (subgraph group) within the partition.
    pub bin: u32,
    /// Pack index (timestep group).
    pub pack: u32,
}

impl SliceKey {
    /// Conventional file name for this slice.
    pub fn file_name(&self) -> String {
        format!("slice-b{:04}-p{:04}.slice", self.bin, self.pack)
    }
}

/// Which column family of a [`SubgraphInstance`] a kernel reads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ColSide {
    /// Vertex columns (rows by local position).
    Vertex,
    /// Edge columns (rows by subgraph edge position).
    Edge,
}

/// A decoded slice. Version-2 slices hold the raw payload as a zero-copy
/// [`Bytes`] view plus a column directory; instances materialize on first
/// [`SliceData::get`] and stay cached in per-cell `OnceLock`s. Version-1
/// slices decode eagerly (their layout interleaves everything anyway).
#[derive(Clone, Debug)]
pub struct SliceData {
    /// Owning partition.
    pub partition: u16,
    /// Which slice this is.
    pub key: SliceKey,
    /// Subgraphs in this bin, in stored order.
    pub sg_ids: Vec<SubgraphId>,
    /// First timestep covered.
    pub t_start: usize,
    /// Number of timesteps covered.
    pub n_timesteps: usize,
    /// `(sg_id, stored index)`, sorted by id — binary-search lookup.
    lookup: Vec<(SubgraphId, u32)>,
    /// Per-timestep-offset wall-clock timestamps.
    timestamps: Vec<i64>,
    repr: Repr,
}

#[derive(Clone, Debug)]
enum Repr {
    /// Version-1: everything decoded up front,
    /// `instances[sg_index * n_timesteps + toff]`.
    Eager(Vec<Arc<SubgraphInstance>>),
    /// Version-2: lazy columnar blocks.
    Lazy(LazyBlocks),
}

#[derive(Clone, Debug)]
struct LazyBlocks {
    n_vertex_cols: usize,
    n_edge_cols: usize,
    /// `n_sg · n_timesteps + 1` monotone offsets into `blocks`.
    offsets: Vec<u64>,
    /// Zero-copy view of the payload's block region.
    blocks: Bytes,
    /// Materialized instances, row-major `[sg_index · n_timesteps + toff]`.
    cells: Vec<OnceLock<Arc<SubgraphInstance>>>,
}

impl SliceData {
    fn from_parts(
        partition: u16,
        key: SliceKey,
        sg_ids: Vec<SubgraphId>,
        t_start: usize,
        n_timesteps: usize,
        timestamps: Vec<i64>,
        repr: Repr,
    ) -> SliceData {
        let mut lookup: Vec<(SubgraphId, u32)> = sg_ids
            .iter()
            .enumerate()
            .map(|(i, &sg)| (sg, i as u32))
            .collect();
        lookup.sort_unstable();
        SliceData {
            partition,
            key,
            sg_ids,
            t_start,
            n_timesteps,
            lookup,
            timestamps,
            repr,
        }
    }

    /// Stored index of `sg`, by binary search over the sorted lookup.
    fn sg_index(&self, sg: SubgraphId) -> Option<usize> {
        self.lookup
            .binary_search_by_key(&sg, |&(id, _)| id)
            .ok()
            .map(|i| self.lookup[i].1 as usize)
    }

    /// The projected instance for `sg` at absolute timestep `t`.
    ///
    /// Out-of-coverage requests are [`GofsError::OutOfRange`]; structural
    /// corruption discovered while materializing a lazy cell surfaces as
    /// the decode error of that cell (and only that cell — other
    /// timesteps remain loadable).
    pub fn get(&self, sg: SubgraphId, t: usize) -> Result<Arc<SubgraphInstance>> {
        let sg_index = self.sg_index(sg).ok_or_else(|| {
            GofsError::OutOfRange(format!("slice {:?} does not cover {sg}", self.key))
        })?;
        if t < self.t_start || t >= self.t_start + self.n_timesteps {
            return Err(GofsError::OutOfRange(format!(
                "slice {:?} covers timesteps {}..{}, not {t}",
                self.key,
                self.t_start,
                self.t_start + self.n_timesteps
            )));
        }
        let toff = t - self.t_start;
        match &self.repr {
            Repr::Eager(instances) => Ok(instances[sg_index * self.n_timesteps + toff].clone()),
            Repr::Lazy(lazy) => self.cell(lazy, sg_index, toff),
        }
    }

    /// Materialize (or fetch the cached) instance for one lazy cell.
    fn cell(
        &self,
        lazy: &LazyBlocks,
        sg_index: usize,
        toff: usize,
    ) -> Result<Arc<SubgraphInstance>> {
        let idx = sg_index * self.n_timesteps + toff;
        if let Some(inst) = lazy.cells[idx].get() {
            return Ok(inst.clone());
        }
        let inst = if toff == 0 {
            Arc::new(self.decode_base(lazy, sg_index)?)
        } else {
            // Delta blocks patch the pack's base snapshot (never chained),
            // so one extra block decode suffices even mid-pack.
            let base = self.cell(lazy, sg_index, 0)?;
            Arc::new(self.decode_delta(lazy, sg_index, toff, &base)?)
        };
        Ok(lazy.cells[idx].get_or_init(|| inst).clone())
    }

    /// Zero-copy view of block `(sg_index, toff)`.
    fn block(&self, lazy: &LazyBlocks, sg_index: usize, toff: usize) -> Bytes {
        let idx = sg_index * self.n_timesteps + toff;
        // Offsets were bounds-checked monotone at decode time.
        let a = lazy.offsets[idx] as usize;
        let b = lazy.offsets[idx + 1] as usize;
        lazy.blocks.slice(a..b)
    }

    fn decode_base(&self, lazy: &LazyBlocks, sg_index: usize) -> Result<SubgraphInstance> {
        let mut buf = self.block(lazy, sg_index, 0);
        let mut vertex_cols = Vec::with_capacity(lazy.n_vertex_cols);
        for _ in 0..lazy.n_vertex_cols {
            vertex_cols.push(codec::get_column(&mut buf)?);
        }
        let mut edge_cols = Vec::with_capacity(lazy.n_edge_cols);
        for _ in 0..lazy.n_edge_cols {
            edge_cols.push(codec::get_column(&mut buf)?);
        }
        self.finish_block(buf, sg_index, 0, vertex_cols, edge_cols)
    }

    fn decode_delta(
        &self,
        lazy: &LazyBlocks,
        sg_index: usize,
        toff: usize,
        base: &SubgraphInstance,
    ) -> Result<SubgraphInstance> {
        let mut buf = self.block(lazy, sg_index, toff);
        let mut vertex_cols = Vec::with_capacity(lazy.n_vertex_cols);
        for c in 0..lazy.n_vertex_cols {
            vertex_cols.push(codec::get_delta_column(&mut buf, &base.vertex_cols[c])?);
        }
        let mut edge_cols = Vec::with_capacity(lazy.n_edge_cols);
        for c in 0..lazy.n_edge_cols {
            edge_cols.push(codec::get_delta_column(&mut buf, &base.edge_cols[c])?);
        }
        self.finish_block(buf, sg_index, toff, vertex_cols, edge_cols)
    }

    fn finish_block(
        &self,
        buf: Bytes,
        sg_index: usize,
        toff: usize,
        vertex_cols: Vec<Column>,
        edge_cols: Vec<Column>,
    ) -> Result<SubgraphInstance> {
        if buf.remaining() != 0 {
            return Err(GofsError::Corrupt(format!(
                "{} trailing bytes in block ({}, toff {toff})",
                buf.remaining(),
                self.sg_ids[sg_index]
            )));
        }
        Ok(SubgraphInstance {
            timestep: self.t_start + toff,
            timestamp: self.timestamps[toff],
            vertex_cols,
            edge_cols,
        })
    }

    /// Wall-clock timestamps per covered timestep offset.
    pub fn timestamps(&self) -> &[i64] {
        &self.timestamps
    }

    /// The column directory of a lazy (v2) slice: `(offsets, blocks_len,
    /// n_vertex_cols, n_edge_cols)`. `None` for eagerly-decoded v1 slices.
    /// [`crate::validate::validate_dataset`] walks this to vet layout
    /// invariants without forcing materialization order.
    pub fn directory(&self) -> Option<(&[u64], usize, usize, usize)> {
        match &self.repr {
            Repr::Eager(_) => None,
            Repr::Lazy(l) => Some((&l.offsets, l.blocks.len(), l.n_vertex_cols, l.n_edge_cols)),
        }
    }

    /// Approximate heap bytes held: the encoded block region (shared,
    /// zero-copy) plus every instance materialized so far. Grows as cells
    /// materialize — the loader's cache accounting reflects what is
    /// actually resident, not the fully-decoded worst case.
    pub fn approx_bytes(&self) -> usize {
        match &self.repr {
            Repr::Eager(instances) => instances.iter().map(|i| i.approx_bytes()).sum(),
            Repr::Lazy(l) => {
                l.blocks.len()
                    + l.cells
                        .iter()
                        .filter_map(|c| c.get())
                        .map(|i| i.approx_bytes())
                        .sum::<usize>()
            }
        }
    }

    /// Instances materialized so far (always the full grid for v1 slices).
    pub fn materialized_cells(&self) -> usize {
        match &self.repr {
            Repr::Eager(instances) => instances.len(),
            Repr::Lazy(l) => l.cells.iter().filter(|c| c.get().is_some()).count(),
        }
    }

    /// Element-wise temporal fold of one `Double` column over absolute
    /// timesteps `[t_from, t_to)`, one output per row. Materializes each
    /// needed instance once, then reduces over borrowed column slices —
    /// no per-instance `Arc` clone round-trips through the loader.
    pub fn window_agg_f64(
        &self,
        sg: SubgraphId,
        side: ColSide,
        col: usize,
        t_from: usize,
        t_to: usize,
        agg: TemporalAgg,
    ) -> Result<Vec<f64>> {
        let insts = self.window(sg, t_from, t_to)?;
        let series = columns_f64(&insts, side, col)?;
        let len = series.first().map_or(0, |s| s.len());
        Ok(kernels::rows_agg_f64(&series, len, agg))
    }

    /// [`Self::window_agg_f64`] for `Long` columns.
    pub fn window_agg_i64(
        &self,
        sg: SubgraphId,
        side: ColSide,
        col: usize,
        t_from: usize,
        t_to: usize,
        agg: TemporalAgg,
    ) -> Result<Vec<i64>> {
        let insts = self.window(sg, t_from, t_to)?;
        let series = columns_i64(&insts, side, col)?;
        let len = series.first().map_or(0, |s| s.len());
        Ok(kernels::rows_agg_i64(&series, len, agg))
    }

    /// Per-row count of values above `threshold` over the window.
    pub fn window_count_gt_f64(
        &self,
        sg: SubgraphId,
        side: ColSide,
        col: usize,
        t_from: usize,
        t_to: usize,
        threshold: f64,
    ) -> Result<Vec<u32>> {
        let insts = self.window(sg, t_from, t_to)?;
        let series = columns_f64(&insts, side, col)?;
        let len = series.first().map_or(0, |s| s.len());
        Ok(kernels::rows_count_gt_f64(&series, len, threshold))
    }

    /// Materialize the instances covering `[t_from, t_to)` for `sg`.
    fn window(
        &self,
        sg: SubgraphId,
        t_from: usize,
        t_to: usize,
    ) -> Result<Vec<Arc<SubgraphInstance>>> {
        if t_from < self.t_start || t_to > self.t_start + self.n_timesteps || t_from > t_to {
            return Err(GofsError::OutOfRange(format!(
                "window {t_from}..{t_to} outside slice coverage {}..{}",
                self.t_start,
                self.t_start + self.n_timesteps
            )));
        }
        (t_from..t_to).map(|t| self.get(sg, t)).collect()
    }
}

fn columns_f64(insts: &[Arc<SubgraphInstance>], side: ColSide, col: usize) -> Result<Vec<&[f64]>> {
    insts
        .iter()
        .map(|i| {
            let r = match side {
                ColSide::Vertex => i.vertex_f64(col),
                ColSide::Edge => i.edge_f64(col),
            };
            r.map_err(GofsError::Core)
        })
        .collect()
}

fn columns_i64(insts: &[Arc<SubgraphInstance>], side: ColSide, col: usize) -> Result<Vec<&[i64]>> {
    insts
        .iter()
        .map(|i| {
            let r = match side {
                ColSide::Vertex => i.vertex_i64(col),
                ColSide::Edge => i.edge_i64(col),
            };
            r.map_err(GofsError::Core)
        })
        .collect()
}

/// Check `rows` is rectangular with one row per subgraph; returns
/// `(n_timesteps, timestamps)` and asserts every subgraph's instance at a
/// given offset carries the same timestamp (they are projections of the
/// same [`tempograph_core::GraphInstance`]).
fn writer_shape(sg_ids: &[SubgraphId], rows: &[Vec<SubgraphInstance>]) -> (usize, Vec<i64>) {
    assert_eq!(rows.len(), sg_ids.len(), "one row per subgraph");
    let n_timesteps = rows.first().map_or(0, |r| r.len());
    assert!(
        rows.iter().all(|r| r.len() == n_timesteps),
        "rows must be rectangular"
    );
    let timestamps: Vec<i64> = (0..n_timesteps)
        .map(|toff| rows[0][toff].timestamp)
        .collect();
    for row in rows {
        for (toff, si) in row.iter().enumerate() {
            assert_eq!(
                si.timestamp, timestamps[toff],
                "instances at one timestep offset must share a timestamp"
            );
        }
    }
    (n_timesteps, timestamps)
}

/// Encode a slice file (current version: columnar, delta-encoded).
///
/// `rows` is indexed `[sg_index][timestep_offset]` and must be rectangular.
pub fn encode_slice(
    partition: u16,
    key: SliceKey,
    sg_ids: &[SubgraphId],
    t_start: usize,
    rows: &[Vec<SubgraphInstance>],
) -> Bytes {
    let (n_timesteps, timestamps) = writer_shape(sg_ids, rows);
    let n_vertex_cols = rows
        .first()
        .and_then(|r| r.first())
        .map_or(0, |si| si.vertex_cols.len());
    let n_edge_cols = rows
        .first()
        .and_then(|r| r.first())
        .map_or(0, |si| si.edge_cols.len());

    // Blocks first, collecting the directory as we go.
    let mut blocks = BytesMut::new();
    let mut offsets: Vec<u64> = Vec::with_capacity(sg_ids.len() * n_timesteps + 1);
    for row in rows {
        for (toff, si) in row.iter().enumerate() {
            assert_eq!(
                (si.vertex_cols.len(), si.edge_cols.len()),
                (n_vertex_cols, n_edge_cols),
                "instances must share the slice's column shape"
            );
            offsets.push(blocks.len() as u64);
            if toff == 0 {
                for c in &si.vertex_cols {
                    codec::put_column(&mut blocks, c);
                }
                for c in &si.edge_cols {
                    codec::put_column(&mut blocks, c);
                }
            } else {
                let base = &row[0];
                for (c, cur) in si.vertex_cols.iter().enumerate() {
                    codec::put_delta_column(&mut blocks, &base.vertex_cols[c], cur);
                }
                for (c, cur) in si.edge_cols.iter().enumerate() {
                    codec::put_delta_column(&mut blocks, &base.edge_cols[c], cur);
                }
            }
        }
    }
    offsets.push(blocks.len() as u64);

    let mut buf = BytesMut::with_capacity(blocks.len() + offsets.len() * 8 + 64);
    buf.put_u16_le(partition);
    buf.put_u32_le(key.bin);
    buf.put_u32_le(key.pack);
    buf.put_u32_le(t_start as u32);
    buf.put_u32_le(n_timesteps as u32);
    buf.put_u32_le(sg_ids.len() as u32);
    for sg in sg_ids {
        buf.put_u32_le(sg.0);
    }
    for &ts in &timestamps {
        buf.put_i64_le(ts);
    }
    buf.put_u32_le(n_vertex_cols as u32);
    buf.put_u32_le(n_edge_cols as u32);
    for &o in &offsets {
        buf.put_u64_le(o);
    }
    buf.put_slice(&blocks);
    frame(SLICE_MAGIC, &buf)
}

/// Encode a slice file in the legacy version-1 layout (row-major,
/// per-instance timestamps, byte-FNV frame). This is what pre-v2 writers
/// produced; kept for compatibility tests and interop tooling.
pub fn encode_slice_v1(
    partition: u16,
    key: SliceKey,
    sg_ids: &[SubgraphId],
    t_start: usize,
    rows: &[Vec<SubgraphInstance>],
) -> Bytes {
    let (n_timesteps, _) = writer_shape(sg_ids, rows);
    let mut buf = BytesMut::new();
    buf.put_u16_le(partition);
    buf.put_u32_le(key.bin);
    buf.put_u32_le(key.pack);
    buf.put_u32_le(t_start as u32);
    buf.put_u32_le(n_timesteps as u32);
    buf.put_u32_le(sg_ids.len() as u32);
    for sg in sg_ids {
        buf.put_u32_le(sg.0);
    }
    for row in rows {
        for si in row {
            buf.put_i64_le(si.timestamp);
            buf.put_u32_le(si.vertex_cols.len() as u32);
            for c in &si.vertex_cols {
                codec::put_column(&mut buf, c);
            }
            buf.put_u32_le(si.edge_cols.len() as u32);
            for c in &si.edge_cols {
                codec::put_column(&mut buf, c);
            }
        }
    }
    frame_v1(SLICE_MAGIC, &buf)
}

/// Decode a slice file of either format version.
pub fn decode_slice(data: &[u8]) -> Result<SliceData> {
    let (version, buf) = unframe_versioned(SLICE_MAGIC, data)?;
    match version {
        codec::FORMAT_V1 => decode_slice_v1(buf),
        codec::FORMAT_VERSION => decode_slice_v2(buf),
        other => Err(GofsError::UnsupportedVersion(other)),
    }
}

/// Shared v1/v2 header prefix: partition, key, t_start, n_timesteps, sg ids.
fn decode_header(buf: &mut Bytes) -> Result<(u16, SliceKey, usize, usize, Vec<SubgraphId>)> {
    if buf.len() < 22 {
        return Err(GofsError::Corrupt("slice header truncated".into()));
    }
    let partition = buf.get_u16_le();
    let bin = codec::get_u32(buf)?;
    let pack = codec::get_u32(buf)?;
    let t_start = codec::get_u32(buf)? as usize;
    let n_timesteps = codec::get_u32(buf)? as usize;
    let n_sg = codec::get_u32(buf)? as usize;
    if n_sg.saturating_mul(n_timesteps) > u32::MAX as usize {
        return Err(GofsError::Corrupt(format!(
            "implausible slice grid {n_sg}×{n_timesteps}"
        )));
    }
    let mut sg_ids = Vec::with_capacity(n_sg);
    for _ in 0..n_sg {
        sg_ids.push(SubgraphId(codec::get_u32(buf)?));
    }
    Ok((
        partition,
        SliceKey { bin, pack },
        t_start,
        n_timesteps,
        sg_ids,
    ))
}

fn decode_slice_v1(mut buf: Bytes) -> Result<SliceData> {
    let (partition, key, t_start, n_timesteps, sg_ids) = decode_header(&mut buf)?;
    let n_sg = sg_ids.len();
    let mut timestamps = vec![0i64; n_timesteps];
    let mut instances = Vec::with_capacity(n_sg * n_timesteps);
    for _sg in 0..n_sg {
        for (toff, ts_slot) in timestamps.iter_mut().enumerate() {
            let timestamp = codec::get_i64(&mut buf)?;
            *ts_slot = timestamp;
            let nvc = codec::get_u32(&mut buf)? as usize;
            let mut vertex_cols = Vec::with_capacity(nvc);
            for _ in 0..nvc {
                vertex_cols.push(codec::get_column(&mut buf)?);
            }
            let nec = codec::get_u32(&mut buf)? as usize;
            let mut edge_cols = Vec::with_capacity(nec);
            for _ in 0..nec {
                edge_cols.push(codec::get_column(&mut buf)?);
            }
            instances.push(Arc::new(SubgraphInstance {
                timestep: t_start + toff,
                timestamp,
                vertex_cols,
                edge_cols,
            }));
        }
    }
    if buf.remaining() != 0 {
        return Err(GofsError::Corrupt(format!(
            "{} trailing bytes after slice payload",
            buf.remaining()
        )));
    }
    Ok(SliceData::from_parts(
        partition,
        key,
        sg_ids,
        t_start,
        n_timesteps,
        timestamps,
        Repr::Eager(instances),
    ))
}

fn decode_slice_v2(mut buf: Bytes) -> Result<SliceData> {
    let (partition, key, t_start, n_timesteps, sg_ids) = decode_header(&mut buf)?;
    let n_sg = sg_ids.len();
    let mut timestamps = Vec::with_capacity(n_timesteps);
    for _ in 0..n_timesteps {
        timestamps.push(codec::get_i64(&mut buf)?);
    }
    let n_vertex_cols = codec::get_u32(&mut buf)? as usize;
    let n_edge_cols = codec::get_u32(&mut buf)? as usize;
    let n_cells = n_sg * n_timesteps;
    let mut offsets = Vec::with_capacity(n_cells + 1);
    for _ in 0..=n_cells {
        offsets.push(codec::get_u64(&mut buf)?);
    }
    // Everything left is the block region — keep it as a zero-copy view.
    let blocks = buf.slice(..);
    // Vet the directory once here so block() can slice unchecked.
    if offsets.first() != Some(&0) {
        return Err(GofsError::Corrupt(
            "column directory must start at 0".into(),
        ));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GofsError::Corrupt(
            "column directory offsets must be monotone".into(),
        ));
    }
    if offsets.last().copied() != Some(blocks.len() as u64) {
        return Err(GofsError::Corrupt(format!(
            "column directory ends at {:?}, block region is {} bytes",
            offsets.last(),
            blocks.len()
        )));
    }
    let cells = std::iter::repeat_with(OnceLock::new)
        .take(n_cells)
        .collect();
    Ok(SliceData::from_parts(
        partition,
        key,
        sg_ids,
        t_start,
        n_timesteps,
        timestamps,
        Repr::Lazy(LazyBlocks {
            n_vertex_cols,
            n_edge_cols,
            offsets,
            blocks,
            cells,
        }),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn si(timestep: usize, val: f64) -> SubgraphInstance {
        SubgraphInstance {
            timestep,
            timestamp: timestep as i64 * 10,
            vertex_cols: vec![Column::Double(vec![val, val + 1.0])],
            edge_cols: vec![Column::Double(vec![val * 2.0])],
        }
    }

    fn sample() -> (Vec<SubgraphId>, Vec<Vec<SubgraphInstance>>, SliceKey) {
        let sg_ids = vec![SubgraphId(4), SubgraphId(9)];
        let rows = vec![
            vec![si(20, 1.0), si(21, 2.0)],
            vec![si(20, 5.0), si(21, 6.0)],
        ];
        (sg_ids, rows, SliceKey { bin: 1, pack: 2 })
    }

    #[test]
    fn slice_roundtrip() {
        let (sg_ids, rows, key) = sample();
        let data = encode_slice(3, key, &sg_ids, 20, &rows);
        let back = decode_slice(&data).unwrap();
        assert_eq!(back.partition, 3);
        assert_eq!(back.key, key);
        assert_eq!(back.sg_ids, sg_ids);
        assert_eq!(back.t_start, 20);
        assert_eq!(back.n_timesteps, 2);
        assert_eq!(back.timestamps(), &[200, 210]);

        let got = back.get(SubgraphId(9), 21).unwrap();
        assert_eq!(got.vertex_cols[0], Column::Double(vec![6.0, 7.0]));
        assert_eq!(got.timestep, 21);
        assert_eq!(got.timestamp, 210);
    }

    #[test]
    fn v1_and_v2_decode_identically() {
        let (sg_ids, rows, key) = sample();
        let v2 = encode_slice(3, key, &sg_ids, 20, &rows);
        let v1 = encode_slice_v1(3, key, &sg_ids, 20, &rows);
        let d2 = decode_slice(&v2).unwrap();
        let d1 = decode_slice(&v1).unwrap();
        for &sg in &sg_ids {
            for t in 20..22 {
                assert_eq!(*d1.get(sg, t).unwrap(), *d2.get(sg, t).unwrap(), "{sg}@{t}");
            }
        }
    }

    #[test]
    fn materialization_is_lazy_and_cached() {
        let (sg_ids, rows, key) = sample();
        let back = decode_slice(&encode_slice(3, key, &sg_ids, 20, &rows)).unwrap();
        assert_eq!(back.materialized_cells(), 0);
        let before = back.approx_bytes();
        back.get(SubgraphId(4), 21).unwrap(); // forces base (toff 0) + delta
        assert_eq!(back.materialized_cells(), 2);
        assert!(back.approx_bytes() > before, "accounting grows with cells");
        // Second read hits the cell cache and returns the same Arc.
        let a = back.get(SubgraphId(4), 21).unwrap();
        let b = back.get(SubgraphId(4), 21).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(back.materialized_cells(), 2);
    }

    #[test]
    fn get_out_of_range_is_typed_error() {
        let sg_ids = vec![SubgraphId(0)];
        let rows = vec![vec![si(5, 1.0)]];
        let data = encode_slice(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 5, &rows);
        let back = decode_slice(&data).unwrap();
        assert!(matches!(
            back.get(SubgraphId(0), 4),
            Err(GofsError::OutOfRange(_))
        ));
        assert!(matches!(
            back.get(SubgraphId(0), 6),
            Err(GofsError::OutOfRange(_))
        ));
        assert!(matches!(
            back.get(SubgraphId(1), 5),
            Err(GofsError::OutOfRange(_))
        ));
        assert!(back.get(SubgraphId(0), 5).is_ok());
    }

    #[test]
    fn binary_search_lookup_handles_unsorted_bins() {
        // sg ids stored out of order still resolve to the right rows.
        let sg_ids = vec![SubgraphId(9), SubgraphId(2), SubgraphId(5)];
        let rows = vec![vec![si(0, 100.0)], vec![si(0, 200.0)], vec![si(0, 300.0)]];
        let back = decode_slice(&encode_slice(
            0,
            SliceKey { bin: 0, pack: 0 },
            &sg_ids,
            0,
            &rows,
        ))
        .unwrap();
        for (i, &sg) in sg_ids.iter().enumerate() {
            let got = back.get(sg, 0).unwrap();
            assert_eq!(
                got.vertex_cols[0],
                Column::Double(vec![
                    (i as f64 + 1.0) * 100.0,
                    (i as f64 + 1.0) * 100.0 + 1.0
                ])
            );
        }
        assert!(back.get(SubgraphId(3), 0).is_err());
    }

    #[test]
    fn corrupt_slice_rejected() {
        let sg_ids = vec![SubgraphId(0)];
        let rows = vec![vec![si(0, 1.0)]];
        let data = encode_slice(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 0, &rows);
        let mut evil = data.to_vec();
        let mid = evil.len() / 2;
        evil[mid] ^= 0xFF;
        assert!(decode_slice(&evil).is_err());
    }

    #[test]
    fn corrupt_directory_rejected_at_decode() {
        let (sg_ids, rows, key) = sample();
        let framed = encode_slice(3, key, &sg_ids, 20, &rows);
        let payload = crate::codec::unframe(SLICE_MAGIC, &framed).unwrap();
        // Directory starts after: 2 + 5*4 + 2*4 (ids) + 2*8 (timestamps) + 8.
        let dir_at = 2 + 20 + 8 + 16 + 8;
        // Truncate the block region so the last offset overruns.
        let truncated = &payload[..payload.len() - 3];
        let reframed = crate::codec::frame(SLICE_MAGIC, truncated);
        let err = decode_slice(&reframed).unwrap_err();
        assert!(matches!(err, GofsError::Corrupt(_)), "{err}");

        // Make one directory offset non-monotone (checksum kept valid by
        // re-framing) — rejected before any block decode.
        let mut warped = payload.to_vec();
        warped[dir_at..dir_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let reframed = crate::codec::frame(SLICE_MAGIC, &warped);
        let err = decode_slice(&reframed).unwrap_err();
        assert!(matches!(err, GofsError::Corrupt(_)), "{err}");
    }

    #[test]
    fn corrupt_delta_block_fails_only_that_cell() {
        let sg_ids = vec![SubgraphId(0)];
        let rows = vec![vec![si(0, 1.0), si(1, 2.0), si(2, 3.0)]];
        let framed = encode_slice(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 0, &rows);
        let payload = crate::codec::unframe(SLICE_MAGIC, &framed).unwrap();
        // Flip the *last* byte of the block region: it lands in the final
        // delta block, leaving the base and earlier deltas intact.
        let mut warped = payload.to_vec();
        let last = warped.len() - 1;
        warped[last] ^= 0xFF;
        let reframed = crate::codec::frame(SLICE_MAGIC, &warped);
        let back = decode_slice(&reframed).unwrap();
        assert!(back.get(SubgraphId(0), 0).is_ok());
        assert!(back.get(SubgraphId(0), 1).is_ok());
        let err = back.get(SubgraphId(0), 2);
        // The flip either breaks the record structure (typed error) or —
        // if it lands in a raw value byte — silently changes a value; both
        // are within the checksum's contract once it is bypassed. Here the
        // last byte is part of a packed f64, so decode still succeeds:
        // assert it does NOT panic and the other cells stay intact.
        let _ = err;
    }

    #[test]
    fn window_kernels_match_scalar_path() {
        let sg_ids = vec![SubgraphId(1)];
        let rows = vec![vec![si(0, 1.0), si(1, 5.0), si(2, -2.0)]];
        let back = decode_slice(&encode_slice(
            0,
            SliceKey { bin: 0, pack: 0 },
            &sg_ids,
            0,
            &rows,
        ))
        .unwrap();
        // vertex col: [v, v+1] per timestep → rows over time:
        //   row0: 1, 5, -2   row1: 2, 6, -1
        assert_eq!(
            back.window_agg_f64(SubgraphId(1), ColSide::Vertex, 0, 0, 3, TemporalAgg::Sum)
                .unwrap(),
            vec![4.0, 7.0]
        );
        assert_eq!(
            back.window_agg_f64(SubgraphId(1), ColSide::Vertex, 0, 0, 3, TemporalAgg::Min)
                .unwrap(),
            vec![-2.0, -1.0]
        );
        assert_eq!(
            back.window_agg_f64(SubgraphId(1), ColSide::Vertex, 0, 1, 2, TemporalAgg::Max)
                .unwrap(),
            vec![5.0, 6.0]
        );
        // edge col: [2v] → 2, 10, -4; count > 1.5 per row.
        assert_eq!(
            back.window_count_gt_f64(SubgraphId(1), ColSide::Edge, 0, 0, 3, 1.5)
                .unwrap(),
            vec![2]
        );
        // Out-of-coverage window is a typed error.
        assert!(back
            .window_agg_f64(SubgraphId(1), ColSide::Vertex, 0, 0, 9, TemporalAgg::Sum)
            .is_err());
    }

    #[test]
    fn delta_encoding_shrinks_redundant_packs() {
        // 10 timesteps, large column, one row changing per step — the
        // time-series-graph shape v2 exists for.
        let n = 500;
        let mut rows_v: Vec<SubgraphInstance> = Vec::new();
        let base: Vec<f64> = (0..n).map(|i| i as f64).collect();
        for t in 0..10 {
            let mut v = base.clone();
            v[t * 7 % n] = -1.0;
            rows_v.push(SubgraphInstance {
                timestep: t,
                timestamp: t as i64,
                vertex_cols: vec![Column::Double(v)],
                edge_cols: vec![],
            });
        }
        let sg_ids = vec![SubgraphId(0)];
        let rows = vec![rows_v];
        let v2 = encode_slice(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 0, &rows);
        let v1 = encode_slice_v1(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 0, &rows);
        assert!(
            (v2.len() as f64) < (v1.len() as f64) * 0.2,
            "v2 ({}) should be ≪ v1 ({}) on slowly-changing data",
            v2.len(),
            v1.len()
        );
        // And it still decodes to the same instances.
        let d2 = decode_slice(&v2).unwrap();
        for (t, row) in rows[0].iter().enumerate() {
            assert_eq!(*d2.get(SubgraphId(0), t).unwrap(), *row);
        }
    }

    #[test]
    fn file_name_is_stable() {
        assert_eq!(
            SliceKey { bin: 3, pack: 12 }.file_name(),
            "slice-b0003-p0012.slice"
        );
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_rows_rejected() {
        let sg_ids = vec![SubgraphId(0), SubgraphId(1)];
        let rows = vec![vec![si(0, 1.0)], vec![]];
        encode_slice(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 0, &rows);
    }
}
