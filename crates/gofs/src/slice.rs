//! The slice-file format.
//!
//! One slice file holds the projected instance data for one **bin** of up to
//! `binning` subgraphs across one **pack** of up to `packing` consecutive
//! timesteps — the paper's "temporal packing of 10 and subgraph binning of
//! 5" (§IV.A). Loading is all-or-nothing per slice, which is precisely what
//! produces the every-`packing`-timesteps load spike in Fig. 6.

use crate::codec::{self, frame, unframe};
use crate::error::{GofsError, Result};
use crate::view::SubgraphInstance;
use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;
use tempograph_partition::SubgraphId;

const SLICE_MAGIC: [u8; 4] = *b"GFSL";

/// Identifies one slice within a partition's directory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceKey {
    /// Bin index (subgraph group) within the partition.
    pub bin: u32,
    /// Pack index (timestep group).
    pub pack: u32,
}

impl SliceKey {
    /// Conventional file name for this slice.
    pub fn file_name(&self) -> String {
        format!("slice-b{:04}-p{:04}.slice", self.bin, self.pack)
    }
}

/// A decoded slice: `instances[sg_index * n_timesteps + (t - t_start)]`.
#[derive(Clone, Debug)]
pub struct SliceData {
    /// Owning partition.
    pub partition: u16,
    /// Which slice this is.
    pub key: SliceKey,
    /// Subgraphs in this bin, in stored order.
    pub sg_ids: Vec<SubgraphId>,
    /// First timestep covered.
    pub t_start: usize,
    /// Number of timesteps covered.
    pub n_timesteps: usize,
    /// Projected instances, row-major by (subgraph, timestep).
    pub instances: Vec<Arc<SubgraphInstance>>,
}

impl SliceData {
    /// The projected instance for `sg` at absolute timestep `t`, if covered.
    pub fn get(&self, sg: SubgraphId, t: usize) -> Option<&Arc<SubgraphInstance>> {
        let sg_index = self.sg_ids.iter().position(|&s| s == sg)?;
        if t < self.t_start || t >= self.t_start + self.n_timesteps {
            return None;
        }
        self.instances
            .get(sg_index * self.n_timesteps + (t - self.t_start))
    }

    /// Total approximate heap bytes of all held instances.
    pub fn approx_bytes(&self) -> usize {
        self.instances.iter().map(|i| i.approx_bytes()).sum()
    }
}

/// Encode a slice file.
///
/// `rows` is indexed `[sg_index][timestep_offset]` and must be rectangular.
pub fn encode_slice(
    partition: u16,
    key: SliceKey,
    sg_ids: &[SubgraphId],
    t_start: usize,
    rows: &[Vec<SubgraphInstance>],
) -> Bytes {
    assert_eq!(rows.len(), sg_ids.len(), "one row per subgraph");
    let n_timesteps = rows.first().map_or(0, |r| r.len());
    assert!(
        rows.iter().all(|r| r.len() == n_timesteps),
        "rows must be rectangular"
    );

    let mut buf = BytesMut::new();
    buf.put_u16_le(partition);
    buf.put_u32_le(key.bin);
    buf.put_u32_le(key.pack);
    buf.put_u32_le(t_start as u32);
    buf.put_u32_le(n_timesteps as u32);
    buf.put_u32_le(sg_ids.len() as u32);
    for sg in sg_ids {
        buf.put_u32_le(sg.0);
    }
    for row in rows {
        for si in row {
            buf.put_i64_le(si.timestamp);
            buf.put_u32_le(si.vertex_cols.len() as u32);
            for c in &si.vertex_cols {
                codec::put_column(&mut buf, c);
            }
            buf.put_u32_le(si.edge_cols.len() as u32);
            for c in &si.edge_cols {
                codec::put_column(&mut buf, c);
            }
        }
    }
    frame(SLICE_MAGIC, &buf)
}

/// Decode a slice file.
pub fn decode_slice(data: &[u8]) -> Result<SliceData> {
    let mut buf = unframe(SLICE_MAGIC, data)?;
    if buf.len() < 18 {
        return Err(GofsError::Corrupt("slice header truncated".into()));
    }
    let partition = {
        use bytes::Buf;
        buf.get_u16_le()
    };
    let bin = codec::get_u32(&mut buf)?;
    let pack = codec::get_u32(&mut buf)?;
    let t_start = codec::get_u32(&mut buf)? as usize;
    let n_timesteps = codec::get_u32(&mut buf)? as usize;
    let n_sg = codec::get_u32(&mut buf)? as usize;
    let mut sg_ids = Vec::with_capacity(n_sg);
    for _ in 0..n_sg {
        sg_ids.push(SubgraphId(codec::get_u32(&mut buf)?));
    }
    let mut instances = Vec::with_capacity(n_sg * n_timesteps);
    for _sg in 0..n_sg {
        for toff in 0..n_timesteps {
            let timestamp = codec::get_i64(&mut buf)?;
            let nvc = codec::get_u32(&mut buf)? as usize;
            let mut vertex_cols = Vec::with_capacity(nvc);
            for _ in 0..nvc {
                vertex_cols.push(codec::get_column(&mut buf)?);
            }
            let nec = codec::get_u32(&mut buf)? as usize;
            let mut edge_cols = Vec::with_capacity(nec);
            for _ in 0..nec {
                edge_cols.push(codec::get_column(&mut buf)?);
            }
            instances.push(Arc::new(SubgraphInstance {
                timestep: t_start + toff,
                timestamp,
                vertex_cols,
                edge_cols,
            }));
        }
    }
    use bytes::Buf;
    if buf.remaining() != 0 {
        return Err(GofsError::Corrupt(format!(
            "{} trailing bytes after slice payload",
            buf.remaining()
        )));
    }
    Ok(SliceData {
        partition,
        key: SliceKey { bin, pack },
        sg_ids,
        t_start,
        n_timesteps,
        instances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::Column;

    fn si(timestep: usize, val: f64) -> SubgraphInstance {
        SubgraphInstance {
            timestep,
            timestamp: timestep as i64 * 10,
            vertex_cols: vec![Column::Double(vec![val, val + 1.0])],
            edge_cols: vec![Column::Double(vec![val * 2.0])],
        }
    }

    #[test]
    fn slice_roundtrip() {
        let sg_ids = vec![SubgraphId(4), SubgraphId(9)];
        let rows = vec![
            vec![si(20, 1.0), si(21, 2.0)],
            vec![si(20, 5.0), si(21, 6.0)],
        ];
        let key = SliceKey { bin: 1, pack: 2 };
        let data = encode_slice(3, key, &sg_ids, 20, &rows);
        let back = decode_slice(&data).unwrap();
        assert_eq!(back.partition, 3);
        assert_eq!(back.key, key);
        assert_eq!(back.sg_ids, sg_ids);
        assert_eq!(back.t_start, 20);
        assert_eq!(back.n_timesteps, 2);

        let got = back.get(SubgraphId(9), 21).unwrap();
        assert_eq!(got.vertex_cols[0], Column::Double(vec![6.0, 7.0]));
        assert_eq!(got.timestep, 21);
        assert_eq!(got.timestamp, 210);
    }

    #[test]
    fn get_out_of_range_returns_none() {
        let sg_ids = vec![SubgraphId(0)];
        let rows = vec![vec![si(5, 1.0)]];
        let data = encode_slice(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 5, &rows);
        let back = decode_slice(&data).unwrap();
        assert!(back.get(SubgraphId(0), 4).is_none());
        assert!(back.get(SubgraphId(0), 6).is_none());
        assert!(back.get(SubgraphId(1), 5).is_none());
        assert!(back.get(SubgraphId(0), 5).is_some());
    }

    #[test]
    fn corrupt_slice_rejected() {
        let sg_ids = vec![SubgraphId(0)];
        let rows = vec![vec![si(0, 1.0)]];
        let data = encode_slice(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 0, &rows);
        let mut evil = data.to_vec();
        let mid = evil.len() / 2;
        evil[mid] ^= 0xFF;
        assert!(decode_slice(&evil).is_err());
    }

    #[test]
    fn file_name_is_stable() {
        assert_eq!(
            SliceKey { bin: 3, pack: 12 }.file_name(),
            "slice-b0003-p0012.slice"
        );
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_rows_rejected() {
        let sg_ids = vec![SubgraphId(0), SubgraphId(1)];
        let rows = vec![vec![si(0, 1.0)], vec![]];
        encode_slice(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 0, &rows);
    }
}
