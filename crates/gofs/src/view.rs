//! Instance data projected onto one subgraph.

use tempograph_core::{AttrType, Column, CoreError, GraphInstance};
use tempograph_partition::Subgraph;

/// The slice of one [`GraphInstance`] visible to one subgraph:
///
/// * vertex attribute rows in **local-position order** (row `p` belongs to
///   `subgraph.vertex_at(p)`);
/// * edge attribute rows in **edge-position order** (row `q` belongs to
///   `subgraph.edges()[q]`; translate with
///   [`Subgraph::edge_pos`](tempograph_partition::Subgraph::edge_pos)).
///
/// This is what GoFS stores in slice files and what the engine hands to the
/// user's `Compute` for each timestep.
#[derive(Clone, Debug, PartialEq)]
pub struct SubgraphInstance {
    /// Timestep index within the dataset (0-based).
    pub timestep: usize,
    /// Wall-clock timestamp `t0 + timestep·δ`.
    pub timestamp: i64,
    /// Vertex columns, schema order; rows by local position.
    pub vertex_cols: Vec<Column>,
    /// Edge columns, schema order; rows by subgraph edge position.
    pub edge_cols: Vec<Column>,
}

impl SubgraphInstance {
    /// Project a full instance onto `subgraph`.
    pub fn project(instance: &GraphInstance, subgraph: &Subgraph, timestep: usize) -> Self {
        let vrows: Vec<usize> = subgraph.vertices().iter().map(|v| v.idx()).collect();
        let erows: Vec<usize> = subgraph.edges().iter().map(|e| e.idx()).collect();
        SubgraphInstance {
            timestep,
            timestamp: instance.timestamp(),
            vertex_cols: instance
                .vertex_columns()
                .iter()
                .map(|c| gather(c, &vrows))
                .collect(),
            edge_cols: instance
                .edge_columns()
                .iter()
                .map(|c| gather(c, &erows))
                .collect(),
        }
    }

    /// Borrow a `Double` vertex column by schema position.
    pub fn vertex_f64(&self, col: usize) -> Result<&[f64], CoreError> {
        match &self.vertex_cols[col] {
            Column::Double(v) => Ok(v),
            c => Err(mismatch(c.ty(), AttrType::Double)),
        }
    }

    /// Borrow a `Long` vertex column by schema position.
    pub fn vertex_i64(&self, col: usize) -> Result<&[i64], CoreError> {
        match &self.vertex_cols[col] {
            Column::Long(v) => Ok(v),
            c => Err(mismatch(c.ty(), AttrType::Long)),
        }
    }

    /// Borrow a `TextList` vertex column by schema position.
    pub fn vertex_text_list(&self, col: usize) -> Result<&[Vec<String>], CoreError> {
        match &self.vertex_cols[col] {
            Column::TextList(v) => Ok(v),
            c => Err(mismatch(c.ty(), AttrType::TextList)),
        }
    }

    /// Borrow a `Bool` vertex column by schema position.
    pub fn vertex_bool(&self, col: usize) -> Result<&[bool], CoreError> {
        match &self.vertex_cols[col] {
            Column::Bool(v) => Ok(v),
            c => Err(mismatch(c.ty(), AttrType::Bool)),
        }
    }

    /// Borrow a `Double` edge column by schema position.
    pub fn edge_f64(&self, col: usize) -> Result<&[f64], CoreError> {
        match &self.edge_cols[col] {
            Column::Double(v) => Ok(v),
            c => Err(mismatch(c.ty(), AttrType::Double)),
        }
    }

    /// Borrow a `Long` edge column by schema position.
    pub fn edge_i64(&self, col: usize) -> Result<&[i64], CoreError> {
        match &self.edge_cols[col] {
            Column::Long(v) => Ok(v),
            c => Err(mismatch(c.ty(), AttrType::Long)),
        }
    }

    /// Approximate heap bytes, for loader cache accounting.
    pub fn approx_bytes(&self) -> usize {
        fn col_bytes(c: &Column) -> usize {
            match c {
                Column::Long(v) => v.len() * 8,
                Column::Double(v) => v.len() * 8,
                Column::Bool(v) => v.len(),
                Column::Text(v) => v.iter().map(|s| s.len() + 24).sum(),
                Column::LongList(v) => v.iter().map(|l| l.len() * 8 + 24).sum(),
                Column::TextList(v) => v
                    .iter()
                    .map(|l| l.iter().map(|s| s.len() + 24).sum::<usize>() + 24)
                    .sum(),
            }
        }
        self.vertex_cols.iter().map(col_bytes).sum::<usize>()
            + self.edge_cols.iter().map(col_bytes).sum::<usize>()
    }
}

fn mismatch(expected: AttrType, got: AttrType) -> CoreError {
    CoreError::AttributeTypeMismatch {
        name: "<projected column>".into(),
        expected,
        got,
    }
}

/// Gather `rows` out of a column into a new dense column.
fn gather(col: &Column, rows: &[usize]) -> Column {
    match col {
        Column::Long(v) => Column::Long(rows.iter().map(|&i| v[i]).collect()),
        Column::Double(v) => Column::Double(rows.iter().map(|&i| v[i]).collect()),
        Column::Bool(v) => Column::Bool(rows.iter().map(|&i| v[i]).collect()),
        Column::Text(v) => Column::Text(rows.iter().map(|&i| v[i].clone()).collect()),
        Column::LongList(v) => Column::LongList(rows.iter().map(|&i| v[i].clone()).collect()),
        Column::TextList(v) => Column::TextList(rows.iter().map(|&i| v[i].clone()).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tempograph_core::{AttrType, TemplateBuilder, VertexIdx};
    use tempograph_partition::{discover_subgraphs, Partitioning};

    /// Path 0-1-2-3 split into partitions {0,1} and {2,3}.
    fn setup() -> (
        Arc<tempograph_core::GraphTemplate>,
        tempograph_partition::PartitionedGraph,
        GraphInstance,
    ) {
        let mut b = TemplateBuilder::new("t", false);
        b.vertex_schema().add("load", AttrType::Double);
        b.edge_schema().add("lat", AttrType::Double);
        for i in 0..4 {
            b.add_vertex(i);
        }
        for i in 0..3u64 {
            b.add_edge(i, i, i + 1).unwrap();
        }
        let t = Arc::new(b.finalize().unwrap());
        let pg = discover_subgraphs(
            t.clone(),
            Partitioning {
                assignment: vec![0, 0, 1, 1],
                k: 2,
            },
        );
        let mut g = GraphInstance::new(&t, 0);
        g.vertex_f64_mut("load")
            .unwrap()
            .copy_from_slice(&[10.0, 11.0, 12.0, 13.0]);
        g.edge_f64_mut("lat")
            .unwrap()
            .copy_from_slice(&[0.5, 1.5, 2.5]);
        (t, pg, g)
    }

    #[test]
    fn projection_selects_member_rows() {
        let (_, pg, g) = setup();
        let sg = pg.subgraph(pg.subgraph_of_vertex(VertexIdx(2)));
        let si = SubgraphInstance::project(&g, sg, 0);
        // Subgraph {2,3}: loads 12, 13.
        assert_eq!(si.vertex_f64(0).unwrap(), &[12.0, 13.0]);
        // Edges touching {2,3}: edge 1 (1-2, crossing) and edge 2 (2-3).
        assert_eq!(sg.edges().len(), 2);
        assert_eq!(si.edge_f64(0).unwrap(), &[1.5, 2.5]);
    }

    #[test]
    fn edge_pos_maps_into_projected_rows() {
        let (t, pg, g) = setup();
        let sg = pg.subgraph(pg.subgraph_of_vertex(VertexIdx(2)));
        let si = SubgraphInstance::project(&g, sg, 0);
        let crossing = t.edge_by_id(1).unwrap();
        let q = sg.edge_pos(crossing).unwrap();
        assert_eq!(si.edge_f64(0).unwrap()[q as usize], 1.5);
    }

    #[test]
    fn type_mismatch_on_wrong_accessor() {
        let (_, pg, g) = setup();
        let sg = pg.subgraph(pg.subgraph_of_vertex(VertexIdx(0)));
        let si = SubgraphInstance::project(&g, sg, 3);
        assert_eq!(si.timestep, 3);
        assert!(si.vertex_i64(0).is_err());
        assert!(si.vertex_text_list(0).is_err());
    }

    #[test]
    fn approx_bytes_counts_rows() {
        let (_, pg, g) = setup();
        let sg = pg.subgraph(pg.subgraph_of_vertex(VertexIdx(0)));
        let si = SubgraphInstance::project(&g, sg, 0);
        // 2 vertices × 8 bytes + 2 edges × 8 bytes
        assert_eq!(si.approx_bytes(), 32);
    }
}
