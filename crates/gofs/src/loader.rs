//! Lazy per-partition instance loading with slice caching.
//!
//! GoFFish "only loads an instance if it is accessed. So inactive instances
//! are not loaded from disk, and fetched only when they perform a
//! computation or receive a message" (§IV.D). [`InstanceLoader`] reproduces
//! this: the first access to any (subgraph, timestep) inside a slice reads
//! the slice file and decodes its *header and column directory*; the
//! per-(subgraph, timestep) instances inside materialize lazily on access
//! (see [`crate::slice`]), so a job touching 2 of 10 timesteps in a pack
//! never decodes the other 8. Subsequent accesses hit the cache. The cache
//! holds a bounded number of slices, evicting least-recently-used packs,
//! so long runs stream through disk just like GoFS.

use crate::error::{GofsError, Result};
use crate::slice::{decode_slice, SliceData, SliceKey};
use crate::store::{bins_for_partition, GofsStore};
use crate::view::SubgraphInstance;
use std::collections::BTreeMap;
use std::sync::Arc;
use tempograph_partition::{PartitionedGraph, SubgraphId};
use tempograph_trace::{Clock, TraceSink};

/// Counters describing a loader's I/O behaviour — the raw material for the
/// Fig. 6 spike analysis and ablation A2.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoaderStats {
    /// Slice files read and decoded.
    pub slice_loads: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Cache hits (requests served without touching disk).
    pub cache_hits: u64,
    /// Cache misses (requests that had to read a slice from disk). Kept
    /// separately from [`LoaderStats::slice_loads`] so the hit rate stays
    /// well-defined even if future load paths (prefetch, warm-up) read
    /// slices without a triggering request.
    pub cache_misses: u64,
    /// Slices evicted to respect the cache budget.
    pub evictions: u64,
    /// Nanoseconds spent reading + decoding slices.
    pub load_ns: u64,
}

impl LoaderStats {
    /// Fraction of requests served from cache (`0.0` when no requests yet —
    /// guarded via [`tempograph_metrics::ratio_or_zero`], never NaN).
    pub fn hit_rate(&self) -> f64 {
        tempograph_metrics::ratio_or_zero(self.cache_hits, self.cache_hits + self.cache_misses)
    }
}

/// Lazy reader for one partition of a GoFS dataset. Single-threaded by
/// design: each engine worker owns its partition's loader (as each GoFFish
/// host owns its local GoFS shard).
pub struct InstanceLoader {
    store: GofsStore,
    partition: u16,
    /// `bin_of_sg[sg] = bin index` for this partition's subgraphs.
    bin_of_sg: BTreeMap<SubgraphId, u32>,
    /// Slice cache with LRU ticks. A `BTreeMap` (lint rule D01): eviction
    /// scans this map, and `HashMap` iteration order would let hasher
    /// randomness pick the victim among equally-old slices — making cache
    /// contents, and thus the I/O metrics, differ between identical runs.
    cache: BTreeMap<SliceKey, (Arc<SliceData>, u64)>,
    /// Monotonic counter for LRU ordering.
    tick: u64,
    /// Max slices kept in cache.
    capacity: usize,
    stats: LoaderStats,
    /// Lifetime totals (never reset): the engine resets [`Self::stats`]
    /// every timestep to window its I/O metrics, but trace counters must
    /// be monotone.
    total: LoaderStats,
    /// Optional trace sink (shares the owning worker's partition track).
    trace: Option<TraceSink>,
}

impl InstanceLoader {
    /// Create a loader for `partition`. `capacity` bounds the number of
    /// cached slices (≥ 1); the number of bins is the natural choice so one
    /// full pack per bin stays resident.
    pub fn new(store: GofsStore, pg: &PartitionedGraph, partition: u16, capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be ≥ 1");
        let bins = bins_for_partition(pg, partition, store.meta().binning);
        let mut bin_of_sg = BTreeMap::new();
        for (bi, bin) in bins.iter().enumerate() {
            for &sg in bin {
                bin_of_sg.insert(sg, bi as u32);
            }
        }
        InstanceLoader {
            store,
            partition,
            bin_of_sg,
            cache: BTreeMap::new(),
            tick: 0,
            capacity,
            stats: LoaderStats::default(),
            total: LoaderStats::default(),
            trace: None,
        }
    }

    /// A loader whose capacity holds one pack per bin (the sensible default).
    pub fn with_default_capacity(store: GofsStore, pg: &PartitionedGraph, partition: u16) -> Self {
        let bins = bins_for_partition(pg, partition, store.meta().binning).len();
        Self::new(store, pg, partition, bins.max(1) * 2)
    }

    /// I/O counters since the last [`Self::reset_stats`].
    pub fn stats(&self) -> &LoaderStats {
        &self.stats
    }

    /// Lifetime I/O counters (unaffected by [`Self::reset_stats`]).
    pub fn total_stats(&self) -> &LoaderStats {
        &self.total
    }

    /// Reset the counters (e.g. between timesteps when sampling per-step I/O).
    pub fn reset_stats(&mut self) {
        self.stats = LoaderStats::default();
    }

    /// Install a trace sink; slice loads become `"gofs.load"` spans and the
    /// cache counters (`gofs.cache_hits` / `gofs.cache_misses` /
    /// `gofs.bytes_read`) are sampled on every miss.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// Hand the trace sink back (with a final counter sample) so the
    /// session can drain it.
    pub fn take_trace_sink(&mut self) -> Option<TraceSink> {
        let mut sink = self.trace.take()?;
        self.sample_counters_into(&mut sink);
        Some(sink)
    }

    fn sample_counters_into(&self, sink: &mut TraceSink) {
        // Sample the lifetime totals, not the resettable window, so the
        // counter tracks stay monotone across per-timestep stat resets.
        sink.counter("gofs.cache_hits", self.total.cache_hits);
        sink.counter("gofs.cache_misses", self.total.cache_misses);
        sink.counter("gofs.bytes_read", self.total.bytes_read);
    }

    /// Fetch the projected instance for `sg` at `timestep`, reading the
    /// covering slice from disk if it is not cached.
    pub fn load(&mut self, sg: SubgraphId, timestep: usize) -> Result<Arc<SubgraphInstance>> {
        let meta = self.store.meta();
        if timestep >= meta.num_timesteps {
            return Err(GofsError::OutOfRange(format!(
                "timestep {timestep} ≥ {}",
                meta.num_timesteps
            )));
        }
        let &bin = self.bin_of_sg.get(&sg).ok_or_else(|| {
            GofsError::OutOfRange(format!(
                "{sg} does not belong to partition {}",
                self.partition
            ))
        })?;
        let pack = (timestep / meta.packing) as u32;
        let key = SliceKey { bin, pack };

        self.tick += 1;
        let tick = self.tick;
        if let Some((slice, last_used)) = self.cache.get_mut(&key) {
            *last_used = tick;
            self.stats.cache_hits += 1;
            self.total.cache_hits += 1;
            let slice = slice.clone();
            // Materialization on a hit is not charged to `load_ns`: the
            // cost being windowed is the disk + decode spike, and a hit
            // touches neither disk nor the framing layer.
            return slice.get(sg, timestep);
        }

        // Miss: read + decode the slice file.
        self.stats.cache_misses += 1;
        self.total.cache_misses += 1;
        let started = Clock::start();
        let span = self.trace.as_ref().map(|s| s.start());
        let path = self.store.slice_path(self.partition, key);
        let data = std::fs::read(&path)?;
        let slice = Arc::new(decode_slice(&data)?);
        // Charge the requested cell's materialization to the load window
        // too, so v1 (eager) and v2 (lazy) loaders are compared on the
        // same work: read + decode-to-usable-instance.
        let inst = slice.get(sg, timestep)?;
        let elapsed = started.elapsed_ns();
        self.stats.slice_loads += 1;
        self.stats.bytes_read += data.len() as u64;
        self.stats.load_ns += elapsed;
        self.total.slice_loads += 1;
        self.total.bytes_read += data.len() as u64;
        self.total.load_ns += elapsed;
        if let (Some(sink), Some(span)) = (self.trace.as_mut(), span) {
            sink.span_arg_since("gofs.load", span, "bytes", data.len() as u64);
        }

        if self.cache.len() >= self.capacity {
            // Evict the least-recently-used slice; ties (possible only if a
            // future path inserts without bumping `tick`) break on the
            // smaller key, so the victim is a pure function of the access
            // sequence.
            if let Some(&victim) = self
                .cache
                .iter()
                .min_by_key(|(k, (_, used))| (*used, **k))
                .map(|(k, _)| k)
            {
                self.cache.remove(&victim);
                self.stats.evictions += 1;
                self.total.evictions += 1;
                if let Some(sink) = self.trace.as_mut() {
                    sink.instant("gofs.evict", None);
                }
            }
        }
        if let Some(sink) = self.trace.as_mut() {
            let hits = self.total.cache_hits;
            let misses = self.total.cache_misses;
            let bytes = self.total.bytes_read;
            sink.counter("gofs.cache_hits", hits);
            sink.counter("gofs.cache_misses", misses);
            sink.counter("gofs.bytes_read", bytes);
        }
        self.cache.insert(key, (slice, tick));
        Ok(inst)
    }

    /// Approximate heap bytes held by cached slices right now: each
    /// slice's encoded block region plus whatever instances have actually
    /// materialized. Lazily-decoded slices start near their on-disk size
    /// and grow only as cells are touched.
    pub fn cached_bytes(&self) -> usize {
        self.cache.values().map(|(s, _)| s.approx_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::write_dataset;
    use std::path::PathBuf;
    use tempograph_core::{AttrType, TemplateBuilder, TimeSeriesCollection};
    use tempograph_partition::{discover_subgraphs, MultilevelPartitioner, Partitioner};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gofs-loader-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn dataset(
        dir: &PathBuf,
        timesteps: usize,
        packing: usize,
        binning: usize,
    ) -> (Arc<PartitionedGraph>, GofsStore) {
        let mut b = TemplateBuilder::new("loader-test", false);
        b.vertex_schema().add("v", AttrType::Long);
        for i in 0..30 {
            b.add_vertex(i);
        }
        for i in 0..29u64 {
            b.add_edge(i, i, i + 1).unwrap();
        }
        let t = Arc::new(b.finalize().unwrap());
        let part = MultilevelPartitioner::default().partition(&t, 2);
        let pg = Arc::new(discover_subgraphs(t.clone(), part));
        let mut coll = TimeSeriesCollection::new(t, 0, 1);
        for ts in 0..timesteps {
            let mut g = coll.new_instance();
            for (i, x) in g.vertex_i64_mut("v").unwrap().iter_mut().enumerate() {
                *x = (ts * 1000 + i) as i64;
            }
            coll.push(g).unwrap();
        }
        write_dataset(dir, pg.clone(), &coll, packing, binning).unwrap();
        (pg, GofsStore::open(dir).unwrap())
    }

    #[test]
    fn lazy_load_and_cache_hits() {
        let dir = tmp("basic");
        let (pg, store) = dataset(&dir, 20, 10, 5);
        let partition = 0u16;
        let sg = pg.subgraphs_of_partition(partition)[0];
        let mut loader = InstanceLoader::with_default_capacity(store, &pg, partition);

        // First access: one slice load.
        let si = loader.load(sg, 0).unwrap();
        assert_eq!(si.timestep, 0);
        assert_eq!(loader.stats().slice_loads, 1);

        // Timesteps 1..9 in the same pack: all cache hits.
        for t in 1..10 {
            loader.load(sg, t).unwrap();
        }
        assert_eq!(loader.stats().slice_loads, 1);
        assert_eq!(loader.stats().cache_hits, 9);

        // Timestep 10 crosses into the next pack: a new load — the Fig. 6
        // "every 10th timestep" spike.
        loader.load(sg, 10).unwrap();
        assert_eq!(loader.stats().slice_loads, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loaded_values_are_correct() {
        let dir = tmp("values");
        let (pg, store) = dataset(&dir, 12, 4, 2);
        let partition = 1u16;
        let mut loader = InstanceLoader::with_default_capacity(store, &pg, partition);
        for &sg_id in pg.subgraphs_of_partition(partition) {
            let sg = pg.subgraph(sg_id);
            for t in [0usize, 5, 11] {
                let si = loader.load(sg_id, t).unwrap();
                let vals = si.vertex_i64(0).unwrap();
                for (pos, &v) in sg.vertices().iter().enumerate() {
                    assert_eq!(vals[pos], (t * 1000 + v.idx()) as i64);
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_respects_capacity() {
        let dir = tmp("evict");
        let (pg, store) = dataset(&dir, 30, 5, 5); // 6 packs
        let partition = 0u16;
        let sg = pg.subgraphs_of_partition(partition)[0];
        let mut loader = InstanceLoader::new(store, &pg, partition, 2);
        for t in 0..30 {
            loader.load(sg, t).unwrap();
        }
        assert_eq!(loader.stats().slice_loads, 6);
        assert_eq!(loader.stats().evictions, 4);
        // Going back to an evicted pack re-loads it.
        loader.load(sg, 0).unwrap();
        assert_eq!(loader.stats().slice_loads, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_requests_fail() {
        let dir = tmp("range");
        let (pg, store) = dataset(&dir, 5, 10, 5);
        let partition = 0u16;
        let sg = pg.subgraphs_of_partition(partition)[0];
        let mut loader = InstanceLoader::with_default_capacity(store, &pg, partition);
        assert!(loader.load(sg, 5).is_err());
        // A subgraph of the *other* partition is rejected.
        let foreign = pg.subgraphs_of_partition(1)[0];
        assert!(loader.load(foreign, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn miss_and_hit_rate_accounting() {
        let dir = tmp("hitrate");
        let (pg, store) = dataset(&dir, 20, 10, 5);
        let sg = pg.subgraphs_of_partition(0)[0];
        let mut loader = InstanceLoader::with_default_capacity(store, &pg, 0);
        assert_eq!(loader.stats().hit_rate(), 0.0, "no requests yet");
        for t in 0..10 {
            loader.load(sg, t).unwrap();
        }
        // 1 miss (pack 0 load) + 9 hits.
        assert_eq!(loader.stats().cache_misses, 1);
        assert_eq!(loader.stats().cache_hits, 9);
        assert!((loader.stats().hit_rate() - 0.9).abs() < 1e-9);
        // The lifetime totals survive a window reset.
        loader.reset_stats();
        assert_eq!(loader.stats().cache_misses, 0);
        assert_eq!(loader.total_stats().cache_misses, 1);
        assert_eq!(loader.total_stats().cache_hits, 9);
        assert!(loader.total_stats().bytes_read > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_sink_records_loads_and_counters() {
        let dir = tmp("trace");
        let (pg, store) = dataset(&dir, 20, 10, 5);
        let sg = pg.subgraphs_of_partition(0)[0];
        let mut loader = InstanceLoader::with_default_capacity(store, &pg, 0);
        loader.set_trace_sink(tempograph_trace::TraceConfig::new().sink(0));
        loader.load(sg, 0).unwrap(); // miss
        loader.load(sg, 1).unwrap(); // hit
        loader.load(sg, 10).unwrap(); // miss (next pack)
        let sink = loader.take_trace_sink().unwrap();
        let events = sink.events();
        let spans = events
            .iter()
            .filter(|e| matches!(e, tempograph_trace::TraceEvent::Span { .. }))
            .count();
        assert_eq!(spans, 2, "one gofs.load span per miss");
        assert!(events.iter().all(|e| {
            !matches!(e, tempograph_trace::TraceEvent::Span { name, .. } if *name != "gofs.load")
        }));
        // Final counter samples reflect the lifetime totals.
        let last_misses = events
            .iter()
            .rev()
            .find_map(|e| match *e {
                tempograph_trace::TraceEvent::Counter {
                    name: "gofs.cache_misses",
                    value,
                    ..
                } => Some(value),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_misses, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_bytes_tracks_lazy_materialization() {
        let dir = tmp("bytes");
        let (pg, store) = dataset(&dir, 10, 10, 5);
        let sg = pg.subgraphs_of_partition(0)[0];
        let mut loader = InstanceLoader::with_default_capacity(store, &pg, 0);
        assert_eq!(loader.cached_bytes(), 0, "nothing cached yet");
        loader.load(sg, 0).unwrap();
        let after_one = loader.cached_bytes();
        assert!(after_one > 0);
        // Another timestep in the same (cached) slice: no new slice load,
        // but the freshly materialized cell grows the accounting.
        loader.load(sg, 5).unwrap();
        assert_eq!(loader.stats().slice_loads, 1);
        assert!(
            loader.cached_bytes() > after_one,
            "materializing another cell must grow cached_bytes"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let dir = tmp("reset");
        let (pg, store) = dataset(&dir, 5, 5, 5);
        let sg = pg.subgraphs_of_partition(0)[0];
        let mut loader = InstanceLoader::with_default_capacity(store, &pg, 0);
        loader.load(sg, 0).unwrap();
        assert_ne!(loader.stats(), &LoaderStats::default());
        loader.reset_stats();
        assert_eq!(loader.stats(), &LoaderStats::default());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
