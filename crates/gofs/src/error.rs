//! GoFS error type.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, GofsError>;

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum GofsError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// File did not start with the expected magic bytes.
    BadMagic {
        /// What the file actually started with.
        found: [u8; 4],
    },
    /// File format version not understood by this build.
    UnsupportedVersion(u16),
    /// Checksum mismatch — the file is corrupt or truncated.
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        expected: u64,
        /// Checksum computed over the payload.
        actual: u64,
    },
    /// Structurally invalid payload (ran out of bytes, bad tag, …).
    Corrupt(String),
    /// A requested timestep/subgraph is outside the stored dataset.
    OutOfRange(String),
    /// Data-model validation failed after decode.
    Core(tempograph_core::CoreError),
}

impl fmt::Display for GofsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GofsError::Io(e) => write!(f, "io error: {e}"),
            GofsError::BadMagic { found } => write!(f, "bad magic {found:?}"),
            GofsError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            GofsError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: footer {expected:#x}, payload {actual:#x}"
                )
            }
            GofsError::Corrupt(what) => write!(f, "corrupt file: {what}"),
            GofsError::OutOfRange(what) => write!(f, "out of range: {what}"),
            GofsError::Core(e) => write!(f, "data model error: {e}"),
        }
    }
}

impl std::error::Error for GofsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GofsError::Io(e) => Some(e),
            GofsError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GofsError {
    fn from(e: std::io::Error) -> Self {
        GofsError::Io(e)
    }
}

impl From<tempograph_core::CoreError> for GofsError {
    fn from(e: tempograph_core::CoreError) -> Self {
        GofsError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GofsError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(GofsError::BadMagic { found: *b"NOPE" }
            .to_string()
            .contains("magic"));
        let e = GofsError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GofsError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
