//! Deep dataset validation and storage statistics.
//!
//! [`validate_dataset`] walks every slice file of a store, decodes it
//! (which re-checks every frame checksum), and verifies full coverage:
//! each (subgraph, timestep) pair appears exactly once, with column shapes
//! matching the subgraph's vertex/edge counts. Used by the CLI and by
//! tests; also returns [`DatasetStats`] for capacity planning.

use crate::error::{GofsError, Result};
use crate::slice::{decode_slice, SliceKey};
use crate::store::{bins_for_partition, GofsStore};
use tempograph_partition::PartitionedGraph;

/// Aggregate storage statistics gathered during validation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DatasetStats {
    /// Slice files present.
    pub slice_files: u64,
    /// Total bytes on disk across slice files.
    pub total_bytes: u64,
    /// Bytes per partition.
    pub bytes_per_partition: Vec<u64>,
    /// (subgraph, timestep) records validated.
    pub records: u64,
}

/// Validate every slice of `store` against `pg` (which must be the store's
/// own partitioned view). Returns storage statistics on success.
pub fn validate_dataset(store: &GofsStore, pg: &PartitionedGraph) -> Result<DatasetStats> {
    let meta = store.meta();
    let n_packs = meta.num_timesteps.div_ceil(meta.packing);
    let mut stats = DatasetStats {
        bytes_per_partition: vec![0; meta.num_partitions],
        ..Default::default()
    };

    for p in 0..meta.num_partitions as u16 {
        let bins = bins_for_partition(pg, p, meta.binning);
        for (bi, bin) in bins.iter().enumerate() {
            // Coverage matrix for this bin: sg × timestep.
            let mut covered = vec![false; bin.len() * meta.num_timesteps];
            for pack in 0..n_packs as u32 {
                let key = SliceKey {
                    bin: bi as u32,
                    pack,
                };
                let path = store.slice_path(p, key);
                let data = std::fs::read(&path).map_err(|e| {
                    GofsError::Corrupt(format!("missing slice {}: {e}", path.display()))
                })?;
                stats.slice_files += 1;
                stats.total_bytes += data.len() as u64;
                stats.bytes_per_partition[p as usize] += data.len() as u64;

                let slice = decode_slice(&data)?;
                if slice.partition != p || slice.key != key {
                    return Err(GofsError::Corrupt(format!(
                        "slice {} self-identifies as partition {} {:?}",
                        path.display(),
                        slice.partition,
                        slice.key
                    )));
                }
                if slice.sg_ids != *bin {
                    return Err(GofsError::Corrupt(format!(
                        "slice {} covers subgraphs {:?}, expected {:?}",
                        path.display(),
                        slice.sg_ids,
                        bin
                    )));
                }
                // v2 slices carry a column directory; walk it before
                // forcing materialization so layout problems are reported
                // as directory faults, not as whichever cell tripped first.
                if let Some((offsets, blocks_len, nvc, nec)) = slice.directory() {
                    let cells = slice.sg_ids.len() * slice.n_timesteps;
                    if offsets.len() != cells + 1 {
                        return Err(GofsError::Corrupt(format!(
                            "slice {} directory has {} offsets for {} cells",
                            path.display(),
                            offsets.len(),
                            cells
                        )));
                    }
                    for (si, &sg_id) in bin.iter().enumerate() {
                        let sg = pg.subgraph(sg_id);
                        let base = si * slice.n_timesteps;
                        // A base snapshot stores every column in full; it
                        // cannot be empty unless the subgraph has no
                        // attributes at all.
                        let base_len = offsets[base + 1] - offsets[base];
                        let has_cols = (nvc > 0 && sg.num_vertices() > 0)
                            || (nec > 0 && sg.num_edges() > 0)
                            || nvc + nec > 0;
                        if has_cols && base_len == 0 {
                            return Err(GofsError::Corrupt(format!(
                                "slice {} has an empty base snapshot for {sg_id}",
                                path.display()
                            )));
                        }
                    }
                    if offsets.last().copied() != Some(blocks_len as u64) {
                        return Err(GofsError::Corrupt(format!(
                            "slice {} directory does not span its block region",
                            path.display()
                        )));
                    }
                }
                for (si, &sg_id) in bin.iter().enumerate() {
                    let sg = pg.subgraph(sg_id);
                    for toff in 0..slice.n_timesteps {
                        let t = slice.t_start + toff;
                        if t >= meta.num_timesteps {
                            return Err(GofsError::Corrupt(format!(
                                "slice {} covers timestep {t} beyond dataset",
                                path.display()
                            )));
                        }
                        let inst = slice.get(sg_id, t).map_err(|e| {
                            GofsError::Corrupt(format!("incomplete slice: {sg_id}@{t}: {e}"))
                        })?;
                        for c in &inst.vertex_cols {
                            if c.len() != sg.num_vertices() {
                                return Err(GofsError::Corrupt(format!(
                                    "{sg_id}@{t}: vertex column of {} rows, expected {}",
                                    c.len(),
                                    sg.num_vertices()
                                )));
                            }
                        }
                        for c in &inst.edge_cols {
                            if c.len() != sg.num_edges() {
                                return Err(GofsError::Corrupt(format!(
                                    "{sg_id}@{t}: edge column of {} rows, expected {}",
                                    c.len(),
                                    sg.num_edges()
                                )));
                            }
                        }
                        let cell = si * meta.num_timesteps + t;
                        if covered[cell] {
                            return Err(GofsError::Corrupt(format!("{sg_id}@{t} stored twice")));
                        }
                        covered[cell] = true;
                        stats.records += 1;
                    }
                }
            }
            if let Some(hole) = covered.iter().position(|&c| !c) {
                let sg = bin[hole / meta.num_timesteps];
                let t = hole % meta.num_timesteps;
                return Err(GofsError::Corrupt(format!("{sg}@{t} missing from store")));
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::write_dataset;
    use std::sync::Arc;
    use tempograph_core::{AttrType, TemplateBuilder, TimeSeriesCollection};
    use tempograph_partition::{discover_subgraphs, MultilevelPartitioner, Partitioner};

    fn dataset(dir: &std::path::Path) -> (Arc<PartitionedGraph>, GofsStore) {
        let mut b = TemplateBuilder::new("val", false);
        b.vertex_schema().add("x", AttrType::Long);
        b.edge_schema().add("w", AttrType::Double);
        for i in 0..24 {
            b.add_vertex(i);
        }
        for i in 0..23u64 {
            b.add_edge(i, i, i + 1).unwrap();
        }
        let t = Arc::new(b.finalize().unwrap());
        let part = MultilevelPartitioner::default().partition(&t, 3);
        let pg = Arc::new(discover_subgraphs(t.clone(), part));
        let mut coll = TimeSeriesCollection::new(t, 0, 1);
        for _ in 0..13 {
            coll.push(coll.new_instance()).unwrap();
        }
        write_dataset(dir, pg.clone(), &coll, 5, 2).unwrap();
        (pg, GofsStore::open(dir).unwrap())
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gofs-validate-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn valid_dataset_passes_with_stats() {
        let dir = tmpdir("ok");
        let (pg, store) = dataset(&dir);
        let stats = validate_dataset(&store, &pg).unwrap();
        assert!(stats.slice_files > 0);
        assert!(stats.total_bytes > 0);
        assert_eq!(stats.bytes_per_partition.len(), 3);
        // Every (subgraph, timestep) pair exactly once.
        assert_eq!(stats.records as usize, pg.subgraphs().len() * 13);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_slice_is_reported() {
        let dir = tmpdir("corrupt");
        let (pg, store) = dataset(&dir);
        // Flip one byte in some slice file.
        let victim = store.slice_path(0, SliceKey { bin: 0, pack: 0 });
        let mut data = std::fs::read(&victim).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&victim, data).unwrap();
        assert!(validate_dataset(&store, &pg).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_slice_is_reported() {
        let dir = tmpdir("missing");
        let (pg, store) = dataset(&dir);
        std::fs::remove_file(store.slice_path(1, SliceKey { bin: 0, pack: 1 })).unwrap();
        let err = validate_dataset(&store, &pg).unwrap_err();
        assert!(err.to_string().contains("missing slice"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
