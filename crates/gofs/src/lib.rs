//! # tempograph-gofs — GoFS-style slice storage for time-series graphs
//!
//! GoFFish stores time-series graphs in **GoFS**, a distributed graph file
//! system (paper §IV.A, [18]): each host holds its partition's data as
//! *slice files* on local disk, grouped by a **temporal packing** factor
//! (10 instances per slice in the paper) and a **subgraph binning** factor
//! (up to 5 subgraphs per slice), "to leverage data locality when
//! incrementally loading time-series graphs from disk at runtime".
//!
//! This crate reproduces that storage layer on a local filesystem — one
//! directory per partition stands in for one host's disk:
//!
//! * [`codec`] — a from-scratch binary format on `bytes` (magic, version,
//!   FNV-1a checksums); no serialisation framework is used;
//! * [`view::SubgraphInstance`] — an instance *projected* onto one subgraph:
//!   vertex attribute rows in local-position order, edge rows in
//!   [`Subgraph::edge_pos`](tempograph_partition::Subgraph::edge_pos) order;
//! * [`slice`] — the slice-file format: `(partition, bin, pack)` →
//!   projected instances for ≤ `binning` subgraphs × ≤ `packing` timesteps;
//! * [`store`] — dataset directory layout, template/partitioning
//!   persistence, [`store::GofsWriter`] / [`store::GofsStore`];
//! * [`loader`] — [`loader::InstanceLoader`], the lazy per-partition reader
//!   whose on-demand slice loads produce the every-`packing`-timesteps
//!   latency spikes visible in the paper's Fig. 6.

#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod loader;
pub mod slice;
pub mod store;
pub mod validate;
pub mod view;

pub use error::{GofsError, Result};
pub use loader::{InstanceLoader, LoaderStats};
pub use slice::{SliceData, SliceKey};
pub use store::{DatasetMeta, GofsStore, GofsWriter};
pub use validate::{validate_dataset, DatasetStats};
pub use view::SubgraphInstance;
