//! From-scratch binary codec on `bytes`.
//!
//! Wire conventions: little-endian fixed-width integers, length-prefixed
//! strings and sequences (`u32` lengths), one-byte type tags for columns
//! (reusing [`AttrType::tag`]). Framed payloads (template files, slice
//! files) carry a 4-byte magic, a `u16` version and a trailing FNV-1a-64
//! checksum over the payload; see [`frame`] / [`unframe`].

use crate::error::{GofsError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tempograph_core::{AttrType, Column, GraphTemplate, Schema, TemplateBuilder, VertexIdx};

/// Format version stamped into every framed file.
pub const FORMAT_VERSION: u16 = 1;

/// FNV-1a 64-bit checksum — tiny, dependency-free, adequate for detecting
/// torn writes and bit rot (not cryptographic).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wrap `payload` with `magic`, version and checksum footer.
pub fn frame(magic: [u8; 4], payload: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(payload.len() + 18);
    out.put_slice(&magic);
    out.put_u16_le(FORMAT_VERSION);
    out.put_u64_le(payload.len() as u64);
    out.put_slice(payload);
    out.put_u64_le(fnv1a64(payload));
    out.freeze()
}

/// Validate magic/version/checksum and return the payload.
pub fn unframe(magic: [u8; 4], data: &[u8]) -> Result<Bytes> {
    if data.len() < 22 {
        return Err(GofsError::Corrupt("file shorter than frame header".into()));
    }
    let mut buf = data;
    let mut found = [0u8; 4];
    buf.copy_to_slice(&mut found);
    if found != magic {
        return Err(GofsError::BadMagic { found });
    }
    let version = buf.get_u16_le();
    if version != FORMAT_VERSION {
        return Err(GofsError::UnsupportedVersion(version));
    }
    let len = buf.get_u64_le() as usize;
    if buf.remaining() != len + 8 {
        return Err(GofsError::Corrupt(format!(
            "payload length {len} disagrees with file size"
        )));
    }
    let payload = Bytes::copy_from_slice(&buf[..len]);
    buf.advance(len);
    let expected = buf.get_u64_le();
    let actual = fnv1a64(&payload);
    if expected != actual {
        return Err(GofsError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

// ---- primitives ---------------------------------------------------------

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(GofsError::Corrupt("string overruns buffer".into()));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| GofsError::Corrupt("invalid UTF-8 in string".into()))
}

/// Checked `u32` read.
pub fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(GofsError::Corrupt("unexpected EOF reading u32".into()));
    }
    Ok(buf.get_u32_le())
}

/// Checked `u64` read.
pub fn get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(GofsError::Corrupt("unexpected EOF reading u64".into()));
    }
    Ok(buf.get_u64_le())
}

/// Checked `i64` read.
pub fn get_i64(buf: &mut Bytes) -> Result<i64> {
    if buf.remaining() < 8 {
        return Err(GofsError::Corrupt("unexpected EOF reading i64".into()));
    }
    Ok(buf.get_i64_le())
}

/// Checked `f64` read.
pub fn get_f64(buf: &mut Bytes) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(GofsError::Corrupt("unexpected EOF reading f64".into()));
    }
    Ok(buf.get_f64_le())
}

/// Checked `u8` read.
pub fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(GofsError::Corrupt("unexpected EOF reading u8".into()));
    }
    Ok(buf.get_u8())
}

// ---- schema -------------------------------------------------------------

/// Append a [`Schema`].
pub fn put_schema(buf: &mut BytesMut, schema: &Schema) {
    buf.put_u32_le(schema.len() as u32);
    for def in schema.iter() {
        put_str(buf, &def.name);
        buf.put_u8(def.ty.tag());
    }
}

/// Read a [`Schema`].
pub fn get_schema(buf: &mut Bytes) -> Result<Schema> {
    let n = get_u32(buf)? as usize;
    let mut schema = Schema::new();
    for _ in 0..n {
        let name = get_str(buf)?;
        let tag = get_u8(buf)?;
        let ty = AttrType::from_tag(tag)
            .ok_or_else(|| GofsError::Corrupt(format!("unknown attr type tag {tag}")))?;
        schema.add(name, ty);
    }
    schema.validate().map_err(GofsError::Core)?;
    Ok(schema)
}

// ---- columns ------------------------------------------------------------

/// Append a typed [`Column`] (tag + length + packed values).
pub fn put_column(buf: &mut BytesMut, col: &Column) {
    buf.put_u8(col.ty().tag());
    buf.put_u32_le(col.len() as u32);
    match col {
        Column::Long(v) => {
            for &x in v {
                buf.put_i64_le(x);
            }
        }
        Column::Double(v) => {
            for &x in v {
                buf.put_f64_le(x);
            }
        }
        Column::Bool(v) => {
            // Bit-packed, 8 per byte.
            let mut byte = 0u8;
            for (i, &b) in v.iter().enumerate() {
                if b {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    buf.put_u8(byte);
                    byte = 0;
                }
            }
            if v.len() % 8 != 0 {
                buf.put_u8(byte);
            }
        }
        Column::Text(v) => {
            for s in v {
                put_str_mut(buf, s);
            }
        }
        Column::LongList(v) => {
            for list in v {
                buf.put_u32_le(list.len() as u32);
                for &x in list {
                    buf.put_i64_le(x);
                }
            }
        }
        Column::TextList(v) => {
            for list in v {
                buf.put_u32_le(list.len() as u32);
                for s in list {
                    put_str_mut(buf, s);
                }
            }
        }
    }
}

fn put_str_mut(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a typed [`Column`].
pub fn get_column(buf: &mut Bytes) -> Result<Column> {
    let tag = get_u8(buf)?;
    let ty = AttrType::from_tag(tag)
        .ok_or_else(|| GofsError::Corrupt(format!("unknown column tag {tag}")))?;
    let len = get_u32(buf)? as usize;
    Ok(match ty {
        AttrType::Long => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(get_i64(buf)?);
            }
            Column::Long(v)
        }
        AttrType::Double => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(get_f64(buf)?);
            }
            Column::Double(v)
        }
        AttrType::Bool => {
            let nbytes = len.div_ceil(8);
            if buf.remaining() < nbytes {
                return Err(GofsError::Corrupt("bool column overruns buffer".into()));
            }
            let raw = buf.split_to(nbytes);
            let v = (0..len).map(|i| raw[i / 8] & (1 << (i % 8)) != 0).collect();
            Column::Bool(v)
        }
        AttrType::Text => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(get_str(buf)?);
            }
            Column::Text(v)
        }
        AttrType::LongList => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                let m = get_u32(buf)? as usize;
                let mut list = Vec::with_capacity(m);
                for _ in 0..m {
                    list.push(get_i64(buf)?);
                }
                v.push(list);
            }
            Column::LongList(v)
        }
        AttrType::TextList => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                let m = get_u32(buf)? as usize;
                let mut list = Vec::with_capacity(m);
                for _ in 0..m {
                    list.push(get_str(buf)?);
                }
                v.push(list);
            }
            Column::TextList(v)
        }
    })
}

// ---- template -----------------------------------------------------------

const TEMPLATE_MAGIC: [u8; 4] = *b"GFTP";

/// Serialise a full [`GraphTemplate`] (framed).
pub fn encode_template(t: &GraphTemplate) -> Bytes {
    let mut buf = BytesMut::new();
    put_str(&mut buf, t.name());
    buf.put_u8(t.directed() as u8);
    put_schema(&mut buf, t.vertex_schema());
    put_schema(&mut buf, t.edge_schema());
    buf.put_u32_le(t.num_vertices() as u32);
    for v in t.vertices() {
        buf.put_u64_le(t.vertex_id(v));
    }
    buf.put_u32_le(t.num_edges() as u32);
    for e in t.edges() {
        let (s, d) = t.endpoints(e);
        buf.put_u64_le(t.edge_id(e));
        buf.put_u32_le(s.0);
        buf.put_u32_le(d.0);
    }
    frame(TEMPLATE_MAGIC, &buf)
}

/// Decode a framed [`GraphTemplate`].
pub fn decode_template(data: &[u8]) -> Result<GraphTemplate> {
    let mut buf = unframe(TEMPLATE_MAGIC, data)?;
    let name = get_str(&mut buf)?;
    let directed = get_u8(&mut buf)? != 0;
    let vertex_schema = get_schema(&mut buf)?;
    let edge_schema = get_schema(&mut buf)?;
    let mut b = TemplateBuilder::new(name, directed);
    *b.vertex_schema() = vertex_schema;
    *b.edge_schema() = edge_schema;
    let nv = get_u32(&mut buf)? as usize;
    for _ in 0..nv {
        b.add_vertex(get_u64(&mut buf)?);
    }
    let ne = get_u32(&mut buf)? as usize;
    for _ in 0..ne {
        let id = get_u64(&mut buf)?;
        let s = get_u32(&mut buf)?;
        let d = get_u32(&mut buf)?;
        if s as usize >= nv || d as usize >= nv {
            return Err(GofsError::Corrupt("edge endpoint out of range".into()));
        }
        b.add_edge_by_idx(id, VertexIdx(s), VertexIdx(d))
            .map_err(GofsError::Core)?;
    }
    b.finalize().map_err(GofsError::Core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::AttrValue;

    #[test]
    fn fnv_known_values() {
        // FNV-1a("") and FNV-1a("a") reference values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn frame_roundtrip_and_tamper_detection() {
        let framed = frame(*b"TEST", b"hello world");
        let payload = unframe(*b"TEST", &framed).unwrap();
        assert_eq!(&payload[..], b"hello world");

        // Wrong magic.
        assert!(matches!(
            unframe(*b"XXXX", &framed),
            Err(GofsError::BadMagic { .. })
        ));
        // Flip a payload bit.
        let mut evil = framed.to_vec();
        evil[16] ^= 0x01;
        assert!(matches!(
            unframe(*b"TEST", &evil),
            Err(GofsError::ChecksumMismatch { .. })
        ));
        // Truncate.
        assert!(unframe(*b"TEST", &framed[..framed.len() - 3]).is_err());
    }

    #[test]
    fn column_roundtrip_all_types() {
        let cols = vec![
            Column::Long(vec![1, -2, i64::MAX]),
            Column::Double(vec![0.5, -1e300, f64::INFINITY]),
            Column::Bool(vec![
                true, false, true, true, false, true, false, true, true,
            ]),
            Column::Text(vec!["".into(), "héllo".into(), "x".repeat(300)]),
            Column::LongList(vec![vec![], vec![1, 2, 3]]),
            Column::TextList(vec![vec!["#a".into()], vec![]]),
        ];
        for col in cols {
            let mut buf = BytesMut::new();
            put_column(&mut buf, &col);
            let mut bytes = buf.freeze();
            let back = get_column(&mut bytes).unwrap();
            assert_eq!(back, col);
            assert_eq!(bytes.remaining(), 0, "column must consume exactly");
        }
    }

    #[test]
    fn bool_column_bitpacking_is_compact() {
        let col = Column::Bool(vec![true; 64]);
        let mut buf = BytesMut::new();
        put_column(&mut buf, &col);
        // 1 tag + 4 len + 8 packed bytes
        assert_eq!(buf.len(), 13);
    }

    #[test]
    fn nan_survives_roundtrip() {
        let col = Column::Double(vec![f64::NAN]);
        let mut buf = BytesMut::new();
        put_column(&mut buf, &col);
        let back = get_column(&mut buf.freeze()).unwrap();
        match back {
            Column::Double(v) => assert!(v[0].is_nan()),
            _ => panic!("wrong type"),
        }
    }

    #[test]
    fn schema_roundtrip() {
        let mut s = Schema::new();
        s.add("latency", AttrType::Double);
        s.add("tweets", AttrType::TextList);
        let mut buf = BytesMut::new();
        put_schema(&mut buf, &s);
        let back = get_schema(&mut buf.freeze()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn template_roundtrip() {
        let mut b = TemplateBuilder::new("codec-test", true);
        b.vertex_schema().add("x", AttrType::Long);
        b.edge_schema().add("w", AttrType::Double);
        for i in 0..5u64 {
            b.add_vertex(i * 100);
        }
        b.add_edge(7, 0, 100).unwrap();
        b.add_edge(8, 100, 400).unwrap();
        let t = b.finalize().unwrap();

        let encoded = encode_template(&t);
        let back = decode_template(&encoded).unwrap();
        assert_eq!(back.name(), "codec-test");
        assert!(back.directed());
        assert_eq!(back.num_vertices(), 5);
        assert_eq!(back.num_edges(), 2);
        assert_eq!(back.vertex_schema(), t.vertex_schema());
        for e in t.edges() {
            assert_eq!(back.endpoints(e), t.endpoints(e));
            assert_eq!(back.edge_id(e), t.edge_id(e));
        }
        // Instances built against the decoded template work identically.
        let g = tempograph_core::GraphInstance::new(&back, 0);
        assert_eq!(g.get_vertex(0, VertexIdx(3)), AttrValue::Long(0));
    }

    #[test]
    fn corrupt_template_rejected() {
        let mut b = TemplateBuilder::new("x", false);
        b.add_vertex(1);
        let t = b.finalize().unwrap();
        let enc = encode_template(&t);
        assert!(decode_template(&enc[..10]).is_err());
    }

    #[test]
    fn string_overrun_detected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1000); // claims 1000 bytes
        buf.put_slice(b"short");
        assert!(get_str(&mut buf.freeze()).is_err());
    }
}
