//! From-scratch binary codec on `bytes`.
//!
//! Wire conventions: little-endian fixed-width integers, length-prefixed
//! strings and sequences (`u32` lengths), one-byte type tags for columns
//! (reusing [`AttrType::tag`]). Framed payloads (template files, slice
//! files) carry a 4-byte magic, a `u16` version and a trailing FNV-1a-64
//! checksum over the payload; see [`frame`] / [`unframe`].

use crate::error::{GofsError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tempograph_core::{AttrType, Column, GraphTemplate, Schema, TemplateBuilder, VertexIdx};

/// Format version stamped into every framed file this build writes.
/// Version 2 switched slice payloads to the columnar delta layout and the
/// frame checksum to [`fnv1a64_words`]; version-1 files remain readable.
pub const FORMAT_VERSION: u16 = 2;

/// The previous format version: row-major slice payloads, byte-serial
/// [`fnv1a64`] frame checksums. Still decoded for backward compatibility.
pub const FORMAT_V1: u16 = 1;

/// FNV-1a 64-bit checksum — tiny, dependency-free, adequate for detecting
/// torn writes and bit rot (not cryptographic). Used by version-1 frames.
///
/// This is inherently byte-serial: every step multiplies the running hash
/// before the next byte is folded in (`h = (h ^ b) · p`), so the chain
/// cannot be widened or reordered without changing the output — there is
/// no output-compatible 8-byte-at-a-time form. Version-2 frames therefore
/// use [`fnv1a64_words`], the same mixing applied per 8-byte word, which
/// does ~1/8th of the serial multiplies.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a-style checksum folding 8-byte little-endian words instead of
/// single bytes — the version-2 frame checksum. A short tail is
/// zero-padded; that is unambiguous because the frame header fixes the
/// payload length before the checksum is compared. Distinct from
/// [`fnv1a64`] output-wise (see there for why the byte form cannot be
/// widened in place).
pub fn fnv1a64_words(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let mut w = [0u8; 8];
        w.copy_from_slice(c);
        h ^= u64::from_le_bytes(w);
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(w);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn checksum_for_version(version: u16, payload: &[u8]) -> Result<u64> {
    match version {
        FORMAT_V1 => Ok(fnv1a64(payload)),
        FORMAT_VERSION => Ok(fnv1a64_words(payload)),
        other => Err(GofsError::UnsupportedVersion(other)),
    }
}

/// Wrap `payload` with `magic`, the current version and checksum footer.
pub fn frame(magic: [u8; 4], payload: &[u8]) -> Bytes {
    frame_with_version(magic, FORMAT_VERSION, payload)
}

/// Wrap `payload` as a version-1 frame — what pre-v2 writers produced.
/// Kept so compatibility tests (and tooling that must interoperate with
/// old readers) can still emit the legacy format.
pub fn frame_v1(magic: [u8; 4], payload: &[u8]) -> Bytes {
    frame_with_version(magic, FORMAT_V1, payload)
}

fn frame_with_version(magic: [u8; 4], version: u16, payload: &[u8]) -> Bytes {
    let checksum = match checksum_for_version(version, payload) {
        Ok(c) => c,
        // Only the two constants above reach this; a bad version here is a
        // programming error, not corrupt input.
        Err(_) => unreachable!("frame_with_version called with unknown version"),
    };
    let mut out = BytesMut::with_capacity(payload.len() + 22);
    out.put_slice(&magic);
    out.put_u16_le(version);
    out.put_u64_le(payload.len() as u64);
    out.put_slice(payload);
    out.put_u64_le(checksum);
    out.freeze()
}

/// Validate magic/version/checksum and return the payload.
pub fn unframe(magic: [u8; 4], data: &[u8]) -> Result<Bytes> {
    unframe_versioned(magic, data).map(|(_, payload)| payload)
}

/// [`unframe`], additionally reporting which format version the frame
/// carries so payload decoders can dispatch (slice files changed layout
/// between versions 1 and 2).
pub fn unframe_versioned(magic: [u8; 4], data: &[u8]) -> Result<(u16, Bytes)> {
    if data.len() < 22 {
        return Err(GofsError::Corrupt("file shorter than frame header".into()));
    }
    let mut buf = data;
    let mut found = [0u8; 4];
    buf.copy_to_slice(&mut found);
    if found != magic {
        return Err(GofsError::BadMagic { found });
    }
    let version = buf.get_u16_le();
    let len = buf.get_u64_le() as usize;
    if buf.remaining() != len + 8 {
        return Err(GofsError::Corrupt(format!(
            "payload length {len} disagrees with file size"
        )));
    }
    let payload = Bytes::copy_from_slice(&buf[..len]);
    buf.advance(len);
    let expected = buf.get_u64_le();
    let actual = checksum_for_version(version, &payload)?;
    if expected != actual {
        return Err(GofsError::ChecksumMismatch { expected, actual });
    }
    Ok((version, payload))
}

// ---- primitives ---------------------------------------------------------

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string. Validates UTF-8 against the
/// buffer view and copies once into the returned `String` (`split_to` +
/// `to_vec` would copy twice).
pub fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(GofsError::Corrupt("string overruns buffer".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| GofsError::Corrupt("invalid UTF-8 in string".into()))?
        .to_owned();
    buf.advance(len);
    Ok(s)
}

// ---- varints -------------------------------------------------------------

/// Append an LEB128 varint (7 value bits per byte, low bits first).
pub fn put_varu64(buf: &mut BytesMut, mut x: u64) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            buf.put_u8(b);
            return;
        }
        buf.put_u8(b | 0x80);
    }
}

/// Read an LEB128 varint (at most 10 bytes for a `u64`).
pub fn get_varu64(buf: &mut Bytes) -> Result<u64> {
    let mut x = 0u64;
    for shift in (0..64).step_by(7) {
        let b = get_u8(buf)?;
        let low = (b & 0x7f) as u64;
        if shift == 63 && low > 1 {
            return Err(GofsError::Corrupt("varint overflows u64".into()));
        }
        x |= low << shift;
        if b & 0x80 == 0 {
            return Ok(x);
        }
    }
    Err(GofsError::Corrupt("varint longer than 10 bytes".into()))
}

/// Checked `u32` read.
pub fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(GofsError::Corrupt("unexpected EOF reading u32".into()));
    }
    Ok(buf.get_u32_le())
}

/// Checked `u64` read.
pub fn get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(GofsError::Corrupt("unexpected EOF reading u64".into()));
    }
    Ok(buf.get_u64_le())
}

/// Checked `i64` read.
pub fn get_i64(buf: &mut Bytes) -> Result<i64> {
    if buf.remaining() < 8 {
        return Err(GofsError::Corrupt("unexpected EOF reading i64".into()));
    }
    Ok(buf.get_i64_le())
}

/// Checked `f64` read.
pub fn get_f64(buf: &mut Bytes) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(GofsError::Corrupt("unexpected EOF reading f64".into()));
    }
    Ok(buf.get_f64_le())
}

/// Checked `u8` read.
pub fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(GofsError::Corrupt("unexpected EOF reading u8".into()));
    }
    Ok(buf.get_u8())
}

// ---- schema -------------------------------------------------------------

/// Append a [`Schema`].
pub fn put_schema(buf: &mut BytesMut, schema: &Schema) {
    buf.put_u32_le(schema.len() as u32);
    for def in schema.iter() {
        put_str(buf, &def.name);
        buf.put_u8(def.ty.tag());
    }
}

/// Read a [`Schema`].
pub fn get_schema(buf: &mut Bytes) -> Result<Schema> {
    let n = get_u32(buf)? as usize;
    let mut schema = Schema::new();
    for _ in 0..n {
        let name = get_str(buf)?;
        let tag = get_u8(buf)?;
        let ty = AttrType::from_tag(tag)
            .ok_or_else(|| GofsError::Corrupt(format!("unknown attr type tag {tag}")))?;
        schema.add(name, ty);
    }
    schema.validate().map_err(GofsError::Core)?;
    Ok(schema)
}

// ---- columns ------------------------------------------------------------

/// Append a typed [`Column`] (tag + length + packed values).
pub fn put_column(buf: &mut BytesMut, col: &Column) {
    buf.put_u8(col.ty().tag());
    buf.put_u32_le(col.len() as u32);
    match col {
        Column::Long(v) => {
            for &x in v {
                buf.put_i64_le(x);
            }
        }
        Column::Double(v) => {
            for &x in v {
                buf.put_f64_le(x);
            }
        }
        Column::Bool(v) => {
            // Bit-packed, 8 per byte.
            let mut byte = 0u8;
            for (i, &b) in v.iter().enumerate() {
                if b {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    buf.put_u8(byte);
                    byte = 0;
                }
            }
            if v.len() % 8 != 0 {
                buf.put_u8(byte);
            }
        }
        Column::Text(v) => {
            for s in v {
                put_str_mut(buf, s);
            }
        }
        Column::LongList(v) => {
            for list in v {
                buf.put_u32_le(list.len() as u32);
                for &x in list {
                    buf.put_i64_le(x);
                }
            }
        }
        Column::TextList(v) => {
            for list in v {
                buf.put_u32_le(list.len() as u32);
                for s in list {
                    put_str_mut(buf, s);
                }
            }
        }
    }
}

fn put_str_mut(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a typed [`Column`].
pub fn get_column(buf: &mut Bytes) -> Result<Column> {
    let tag = get_u8(buf)?;
    let ty = AttrType::from_tag(tag)
        .ok_or_else(|| GofsError::Corrupt(format!("unknown column tag {tag}")))?;
    let len = get_u32(buf)? as usize;
    Ok(match ty {
        AttrType::Long => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(get_i64(buf)?);
            }
            Column::Long(v)
        }
        AttrType::Double => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(get_f64(buf)?);
            }
            Column::Double(v)
        }
        AttrType::Bool => {
            let nbytes = len.div_ceil(8);
            if buf.remaining() < nbytes {
                return Err(GofsError::Corrupt("bool column overruns buffer".into()));
            }
            let raw = buf.split_to(nbytes);
            let v = (0..len).map(|i| raw[i / 8] & (1 << (i % 8)) != 0).collect();
            Column::Bool(v)
        }
        AttrType::Text => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(get_str(buf)?);
            }
            Column::Text(v)
        }
        AttrType::LongList => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                let m = get_u32(buf)? as usize;
                let mut list = Vec::with_capacity(m);
                for _ in 0..m {
                    list.push(get_i64(buf)?);
                }
                v.push(list);
            }
            Column::LongList(v)
        }
        AttrType::TextList => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                let m = get_u32(buf)? as usize;
                let mut list = Vec::with_capacity(m);
                for _ in 0..m {
                    list.push(get_str(buf)?);
                }
                v.push(list);
            }
            Column::TextList(v)
        }
    })
}

// ---- delta columns (v2 slices) ------------------------------------------

/// Delta record tag: a full [`put_column`] follows (dense fallback).
const DELTA_DENSE: u8 = 0;
/// Delta record tag: varint change count, delta-coded ascending row
/// indices, then a gathered [`put_column`] of just the changed values.
const DELTA_SPARSE: u8 = 1;

/// Exact [`put_column`] output size in bytes, without encoding.
pub fn encoded_column_size(col: &Column) -> usize {
    let body = match col {
        Column::Long(v) => v.len() * 8,
        Column::Double(v) => v.len() * 8,
        Column::Bool(v) => v.len().div_ceil(8),
        Column::Text(v) => v.iter().map(|s| 4 + s.len()).sum(),
        Column::LongList(v) => v.iter().map(|l| 4 + l.len() * 8).sum(),
        Column::TextList(v) => v
            .iter()
            .map(|l| 4 + l.iter().map(|s| 4 + s.len()).sum::<usize>())
            .sum(),
    };
    1 + 4 + body // tag + length prefix + packed values
}

/// Append `cur` encoded as a delta against `base`: sparse
/// (changed-rows-only) when that is strictly smaller than re-encoding the
/// whole column, dense otherwise. `base` and `cur` must be same-typed,
/// same-length projections of one column — the writer guarantees this, so
/// a mismatch panics (encode side only; the decode side never panics).
pub fn put_delta_column(buf: &mut BytesMut, base: &Column, cur: &Column) {
    let rows = cur
        .changed_rows(base)
        .expect("delta-encoded columns must be same-typed and same-length");
    // Sparse record body: varint count, delta-coded indices, gathered values.
    let mut sparse = BytesMut::new();
    put_varu64(&mut sparse, rows.len() as u64);
    let mut prev = 0u64;
    for &r in &rows {
        put_varu64(&mut sparse, r as u64 - prev);
        prev = r as u64;
    }
    put_column(&mut sparse, &cur.gather_rows(&rows));
    if sparse.len() < encoded_column_size(cur) {
        buf.put_u8(DELTA_SPARSE);
        buf.put_slice(&sparse);
    } else {
        buf.put_u8(DELTA_DENSE);
        put_column(buf, cur);
    }
}

/// Read a delta record written by [`put_delta_column`] and rebuild the
/// full column by patching a clone of `base`. All structural failures
/// (unknown tag, out-of-range rows, type/length disagreements) surface as
/// typed [`GofsError`]s.
pub fn get_delta_column(buf: &mut Bytes, base: &Column) -> Result<Column> {
    let tag = get_u8(buf)?;
    match tag {
        DELTA_DENSE => {
            let col = get_column(buf)?;
            if col.ty() != base.ty() || col.len() != base.len() {
                return Err(GofsError::Corrupt(format!(
                    "dense delta column {:?}×{} does not match base {:?}×{}",
                    col.ty(),
                    col.len(),
                    base.ty(),
                    base.len()
                )));
            }
            Ok(col)
        }
        DELTA_SPARSE => {
            let n = get_varu64(buf)? as usize;
            if n > base.len() {
                return Err(GofsError::Corrupt(format!(
                    "sparse delta claims {n} changed rows in a {}-row column",
                    base.len()
                )));
            }
            let mut rows = Vec::with_capacity(n);
            let mut at = 0u64;
            for i in 0..n {
                let gap = get_varu64(buf)?;
                if i > 0 && gap == 0 {
                    return Err(GofsError::Corrupt(
                        "sparse delta rows must be strictly ascending".into(),
                    ));
                }
                at = at
                    .checked_add(gap)
                    .ok_or_else(|| GofsError::Corrupt("sparse delta row index overflows".into()))?;
                if at >= base.len() as u64 {
                    return Err(GofsError::Corrupt(format!(
                        "sparse delta row {at} out of range (column has {} rows)",
                        base.len()
                    )));
                }
                rows.push(at as u32);
            }
            let values = get_column(buf)?;
            let mut col = base.clone();
            col.scatter_rows(&rows, &values)
                .map_err(|e| GofsError::Corrupt(format!("sparse delta does not apply: {e}")))?;
            Ok(col)
        }
        other => Err(GofsError::Corrupt(format!("unknown delta tag {other}"))),
    }
}

// ---- template -----------------------------------------------------------

const TEMPLATE_MAGIC: [u8; 4] = *b"GFTP";

/// Serialise a full [`GraphTemplate`] (framed).
pub fn encode_template(t: &GraphTemplate) -> Bytes {
    let mut buf = BytesMut::new();
    put_str(&mut buf, t.name());
    buf.put_u8(t.directed() as u8);
    put_schema(&mut buf, t.vertex_schema());
    put_schema(&mut buf, t.edge_schema());
    buf.put_u32_le(t.num_vertices() as u32);
    for v in t.vertices() {
        buf.put_u64_le(t.vertex_id(v));
    }
    buf.put_u32_le(t.num_edges() as u32);
    for e in t.edges() {
        let (s, d) = t.endpoints(e);
        buf.put_u64_le(t.edge_id(e));
        buf.put_u32_le(s.0);
        buf.put_u32_le(d.0);
    }
    frame(TEMPLATE_MAGIC, &buf)
}

/// Decode a framed [`GraphTemplate`].
pub fn decode_template(data: &[u8]) -> Result<GraphTemplate> {
    let mut buf = unframe(TEMPLATE_MAGIC, data)?;
    let name = get_str(&mut buf)?;
    let directed = get_u8(&mut buf)? != 0;
    let vertex_schema = get_schema(&mut buf)?;
    let edge_schema = get_schema(&mut buf)?;
    let mut b = TemplateBuilder::new(name, directed);
    *b.vertex_schema() = vertex_schema;
    *b.edge_schema() = edge_schema;
    let nv = get_u32(&mut buf)? as usize;
    for _ in 0..nv {
        b.add_vertex(get_u64(&mut buf)?);
    }
    let ne = get_u32(&mut buf)? as usize;
    for _ in 0..ne {
        let id = get_u64(&mut buf)?;
        let s = get_u32(&mut buf)?;
        let d = get_u32(&mut buf)?;
        if s as usize >= nv || d as usize >= nv {
            return Err(GofsError::Corrupt("edge endpoint out of range".into()));
        }
        b.add_edge_by_idx(id, VertexIdx(s), VertexIdx(d))
            .map_err(GofsError::Core)?;
    }
    b.finalize().map_err(GofsError::Core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::AttrValue;

    #[test]
    fn fnv_known_values() {
        // FNV-1a("") and FNV-1a("a") reference values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn frame_roundtrip_and_tamper_detection() {
        let framed = frame(*b"TEST", b"hello world");
        let payload = unframe(*b"TEST", &framed).unwrap();
        assert_eq!(&payload[..], b"hello world");

        // Wrong magic.
        assert!(matches!(
            unframe(*b"XXXX", &framed),
            Err(GofsError::BadMagic { .. })
        ));
        // Flip a payload bit.
        let mut evil = framed.to_vec();
        evil[16] ^= 0x01;
        assert!(matches!(
            unframe(*b"TEST", &evil),
            Err(GofsError::ChecksumMismatch { .. })
        ));
        // Truncate.
        assert!(unframe(*b"TEST", &framed[..framed.len() - 3]).is_err());
    }

    #[test]
    fn fnv_words_known_values() {
        // Empty input: offset basis, same as the byte form.
        assert_eq!(fnv1a64_words(b""), 0xcbf2_9ce4_8422_2325);
        // One full word folds exactly once.
        let w = u64::from_le_bytes(*b"abcdefgh");
        let expect = (0xcbf2_9ce4_8422_2325u64 ^ w).wrapping_mul(0x0000_0100_0000_01b3);
        assert_eq!(fnv1a64_words(b"abcdefgh"), expect);
        // A short tail is zero-padded — but zero-padding is unambiguous
        // only together with the frame's length field, so "a" and "a\0"
        // colliding here is by design, not a defect.
        assert_eq!(fnv1a64_words(b"a"), fnv1a64_words(b"a\0"));
        // Word and byte forms are different functions.
        assert_ne!(fnv1a64_words(b"abcdefgh"), fnv1a64(b"abcdefgh"));
    }

    #[test]
    fn frame_versions_roundtrip_and_dispatch() {
        let v2 = frame(*b"TEST", b"payload");
        let v1 = frame_v1(*b"TEST", b"payload");
        assert_ne!(&v2[..], &v1[..], "versions differ on the wire");
        let (ver2, p2) = unframe_versioned(*b"TEST", &v2).unwrap();
        let (ver1, p1) = unframe_versioned(*b"TEST", &v1).unwrap();
        assert_eq!((ver2, &p2[..]), (FORMAT_VERSION, &b"payload"[..]));
        assert_eq!((ver1, &p1[..]), (FORMAT_V1, &b"payload"[..]));
        // Plain unframe accepts both.
        assert_eq!(&unframe(*b"TEST", &v1).unwrap()[..], b"payload");

        // An unknown version is rejected before any checksum guesswork.
        let mut v9 = v2.to_vec();
        v9[4] = 9;
        v9[5] = 0;
        assert!(matches!(
            unframe(*b"TEST", &v9),
            Err(GofsError::UnsupportedVersion(9))
        ));

        // Tampering with a v1 frame is still caught by the byte checksum.
        let mut evil = v1.to_vec();
        evil[15] ^= 0x40;
        assert!(matches!(
            unframe(*b"TEST", &evil),
            Err(GofsError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn varint_roundtrip() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = BytesMut::new();
        for &x in &cases {
            put_varu64(&mut buf, x);
        }
        let mut bytes = buf.freeze();
        for &x in &cases {
            assert_eq!(get_varu64(&mut bytes).unwrap(), x);
        }
        assert_eq!(bytes.remaining(), 0);
        // Unterminated varint → typed error, not a panic.
        let mut bad = Bytes::copy_from_slice(&[0x80, 0x80]);
        assert!(get_varu64(&mut bad).is_err());
        // 10 continuation bytes with high bits set → overflow error.
        let mut over = Bytes::copy_from_slice(&[0xff; 11]);
        assert!(get_varu64(&mut over).is_err());
    }

    #[test]
    fn delta_column_sparse_roundtrip_and_size() {
        let base = Column::Double((0..100).map(|i| i as f64).collect());
        let mut cur = base.clone();
        if let Column::Double(v) = &mut cur {
            v[3] = -1.0;
            v[97] = 42.0;
        }
        let mut buf = BytesMut::new();
        put_delta_column(&mut buf, &base, &cur);
        assert!(
            buf.len() < encoded_column_size(&cur) / 4,
            "2-row delta of a 100-row column must be far smaller than dense ({} vs {})",
            buf.len(),
            encoded_column_size(&cur)
        );
        let mut bytes = buf.freeze();
        let back = get_delta_column(&mut bytes, &base).unwrap();
        assert_eq!(back, cur);
        assert_eq!(bytes.remaining(), 0, "delta must consume exactly");
    }

    #[test]
    fn delta_column_dense_fallback_when_everything_changes() {
        let base = Column::Long((0..50).collect());
        let cur = Column::Long((1000..1050).collect());
        let mut buf = BytesMut::new();
        put_delta_column(&mut buf, &base, &cur);
        // Tag byte + dense encoding: never larger than dense + 1.
        assert_eq!(buf.len(), 1 + encoded_column_size(&cur));
        assert_eq!(buf[0], DELTA_DENSE);
        let back = get_delta_column(&mut buf.freeze(), &base).unwrap();
        assert_eq!(back, cur);
    }

    #[test]
    fn delta_column_all_types_roundtrip() {
        let pairs = [
            (Column::Long(vec![1, 2, 3]), Column::Long(vec![1, 9, 3])),
            (
                Column::Double(vec![f64::NAN, 0.0]),
                Column::Double(vec![f64::NAN, -0.0]),
            ),
            (
                Column::Bool(vec![true, false, true]),
                Column::Bool(vec![true, true, true]),
            ),
            (
                Column::Text(vec!["a".into(), "b".into()]),
                Column::Text(vec!["a".into(), "changed".into()]),
            ),
            (
                Column::LongList(vec![vec![], vec![1]]),
                Column::LongList(vec![vec![5], vec![1]]),
            ),
            (
                Column::TextList(vec![vec!["#x".into()], vec![]]),
                Column::TextList(vec![vec!["#x".into(), "#y".into()], vec![]]),
            ),
        ];
        for (base, cur) in pairs {
            let mut buf = BytesMut::new();
            put_delta_column(&mut buf, &base, &cur);
            let mut bytes = buf.freeze();
            let back = get_delta_column(&mut bytes, &base).unwrap();
            // Compare Doubles by bit pattern (NaN != NaN under PartialEq,
            // but the codec's contract is exact bit preservation).
            match (&back, &cur) {
                (Column::Double(a), Column::Double(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                _ => assert_eq!(back, cur),
            }
            assert_eq!(bytes.remaining(), 0);
        }
    }

    #[test]
    fn corrupt_delta_records_are_typed_errors() {
        let base = Column::Long(vec![1, 2, 3]);
        // Unknown tag.
        let mut bad = Bytes::copy_from_slice(&[7]);
        assert!(matches!(
            get_delta_column(&mut bad, &base),
            Err(GofsError::Corrupt(_))
        ));
        // Sparse record whose row index runs past the column.
        let mut buf = BytesMut::new();
        buf.put_u8(DELTA_SPARSE);
        put_varu64(&mut buf, 1); // one change
        put_varu64(&mut buf, 9); // at row 9 of a 3-row column
        put_column(&mut buf, &Column::Long(vec![0]));
        assert!(get_delta_column(&mut buf.freeze(), &base).is_err());
        // More claimed changes than rows.
        let mut buf = BytesMut::new();
        buf.put_u8(DELTA_SPARSE);
        put_varu64(&mut buf, 99);
        assert!(get_delta_column(&mut buf.freeze(), &base).is_err());
        // Dense record of the wrong shape.
        let mut buf = BytesMut::new();
        buf.put_u8(DELTA_DENSE);
        put_column(&mut buf, &Column::Long(vec![1]));
        assert!(get_delta_column(&mut buf.freeze(), &base).is_err());
        // Truncated mid-record.
        let mut buf = BytesMut::new();
        buf.put_u8(DELTA_SPARSE);
        put_varu64(&mut buf, 1);
        assert!(get_delta_column(&mut buf.freeze(), &base).is_err());
    }

    #[test]
    fn encoded_column_size_is_exact() {
        let cols = [
            Column::Long(vec![1, 2, 3]),
            Column::Double(vec![0.5]),
            Column::Bool(vec![true; 9]),
            Column::Text(vec!["héllo".into(), "".into()]),
            Column::LongList(vec![vec![1, 2], vec![]]),
            Column::TextList(vec![vec!["a".into()], vec![]]),
        ];
        for col in cols {
            let mut buf = BytesMut::new();
            put_column(&mut buf, &col);
            assert_eq!(buf.len(), encoded_column_size(&col), "{:?}", col.ty());
        }
    }

    #[test]
    fn column_roundtrip_all_types() {
        let cols = vec![
            Column::Long(vec![1, -2, i64::MAX]),
            Column::Double(vec![0.5, -1e300, f64::INFINITY]),
            Column::Bool(vec![
                true, false, true, true, false, true, false, true, true,
            ]),
            Column::Text(vec!["".into(), "héllo".into(), "x".repeat(300)]),
            Column::LongList(vec![vec![], vec![1, 2, 3]]),
            Column::TextList(vec![vec!["#a".into()], vec![]]),
        ];
        for col in cols {
            let mut buf = BytesMut::new();
            put_column(&mut buf, &col);
            let mut bytes = buf.freeze();
            let back = get_column(&mut bytes).unwrap();
            assert_eq!(back, col);
            assert_eq!(bytes.remaining(), 0, "column must consume exactly");
        }
    }

    #[test]
    fn bool_column_bitpacking_is_compact() {
        let col = Column::Bool(vec![true; 64]);
        let mut buf = BytesMut::new();
        put_column(&mut buf, &col);
        // 1 tag + 4 len + 8 packed bytes
        assert_eq!(buf.len(), 13);
    }

    #[test]
    fn nan_survives_roundtrip() {
        let col = Column::Double(vec![f64::NAN]);
        let mut buf = BytesMut::new();
        put_column(&mut buf, &col);
        let back = get_column(&mut buf.freeze()).unwrap();
        match back {
            Column::Double(v) => assert!(v[0].is_nan()),
            _ => panic!("wrong type"),
        }
    }

    #[test]
    fn schema_roundtrip() {
        let mut s = Schema::new();
        s.add("latency", AttrType::Double);
        s.add("tweets", AttrType::TextList);
        let mut buf = BytesMut::new();
        put_schema(&mut buf, &s);
        let back = get_schema(&mut buf.freeze()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn template_roundtrip() {
        let mut b = TemplateBuilder::new("codec-test", true);
        b.vertex_schema().add("x", AttrType::Long);
        b.edge_schema().add("w", AttrType::Double);
        for i in 0..5u64 {
            b.add_vertex(i * 100);
        }
        b.add_edge(7, 0, 100).unwrap();
        b.add_edge(8, 100, 400).unwrap();
        let t = b.finalize().unwrap();

        let encoded = encode_template(&t);
        let back = decode_template(&encoded).unwrap();
        assert_eq!(back.name(), "codec-test");
        assert!(back.directed());
        assert_eq!(back.num_vertices(), 5);
        assert_eq!(back.num_edges(), 2);
        assert_eq!(back.vertex_schema(), t.vertex_schema());
        for e in t.edges() {
            assert_eq!(back.endpoints(e), t.endpoints(e));
            assert_eq!(back.edge_id(e), t.edge_id(e));
        }
        // Instances built against the decoded template work identically.
        let g = tempograph_core::GraphInstance::new(&back, 0);
        assert_eq!(g.get_vertex(0, VertexIdx(3)), AttrValue::Long(0));
    }

    #[test]
    fn corrupt_template_rejected() {
        let mut b = TemplateBuilder::new("x", false);
        b.add_vertex(1);
        let t = b.finalize().unwrap();
        let enc = encode_template(&t);
        assert!(decode_template(&enc[..10]).is_err());
    }

    #[test]
    fn string_overrun_detected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1000); // claims 1000 bytes
        buf.put_slice(b"short");
        assert!(get_str(&mut buf.freeze()).is_err());
    }
}
