//! Dataset directory layout, metadata, writer and reader.
//!
//! ```text
//! dataset/
//!   meta.bin            framed dataset metadata
//!   template.bin        framed GraphTemplate
//!   partitioning.bin    framed vertex→partition assignment
//!   partition-000/      one directory per partition ("host disk")
//!     slice-b0000-p0000.slice
//!     ...
//! ```

use crate::codec::{self, frame, unframe};
use crate::error::{GofsError, Result};
use crate::slice::{encode_slice, SliceKey};
use crate::view::SubgraphInstance;
use bytes::{Buf, BufMut, BytesMut};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tempograph_core::{GraphInstance, GraphTemplate, TimeSeriesCollection};
use tempograph_partition::{discover_subgraphs, PartitionedGraph, Partitioning, SubgraphId};

const META_MAGIC: [u8; 4] = *b"GFMT";
const PART_MAGIC: [u8; 4] = *b"GFPT";

/// The staging sibling [`write_atomic`] writes into before renaming
/// (exposed so fault-injection tests can assert that a crash mid-write
/// leaves only this file behind, never a torn target).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `data` to `path` atomically: stage into a `.tmp` sibling, then
/// rename over the target. Readers can never observe a half-written file —
/// a crash mid-write leaves the old target (or nothing) plus a stale
/// `.tmp`. All GoFS dataset files and engine checkpoint files go through
/// this, so every on-disk frame is either absent or complete.
pub fn write_atomic(path: impl AsRef<Path>, data: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, data)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Dataset-level metadata persisted in `meta.bin`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetMeta {
    /// Dataset name (from the template).
    pub name: String,
    /// `t0`.
    pub start_time: i64,
    /// `δ`.
    pub period: i64,
    /// Number of stored instances.
    pub num_timesteps: usize,
    /// Number of partitions.
    pub num_partitions: usize,
    /// Temporal packing factor (instances per slice; the paper uses 10).
    pub packing: usize,
    /// Subgraph binning factor (subgraphs per slice; the paper uses 5).
    pub binning: usize,
}

impl DatasetMeta {
    fn encode(&self) -> bytes::Bytes {
        let mut buf = BytesMut::new();
        codec::put_str(&mut buf, &self.name);
        buf.put_i64_le(self.start_time);
        buf.put_i64_le(self.period);
        buf.put_u64_le(self.num_timesteps as u64);
        buf.put_u32_le(self.num_partitions as u32);
        buf.put_u32_le(self.packing as u32);
        buf.put_u32_le(self.binning as u32);
        frame(META_MAGIC, &buf)
    }

    fn decode(data: &[u8]) -> Result<Self> {
        let mut buf = unframe(META_MAGIC, data)?;
        let name = codec::get_str(&mut buf)?;
        let start_time = codec::get_i64(&mut buf)?;
        let period = codec::get_i64(&mut buf)?;
        let num_timesteps = codec::get_u64(&mut buf)? as usize;
        let num_partitions = codec::get_u32(&mut buf)? as usize;
        let packing = codec::get_u32(&mut buf)? as usize;
        let binning = codec::get_u32(&mut buf)? as usize;
        if packing == 0 || binning == 0 {
            return Err(GofsError::Corrupt("packing/binning must be ≥ 1".into()));
        }
        Ok(DatasetMeta {
            name,
            start_time,
            period,
            num_timesteps,
            num_partitions,
            packing,
            binning,
        })
    }
}

fn encode_partitioning(p: &Partitioning) -> bytes::Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(p.k as u32);
    buf.put_u64_le(p.assignment.len() as u64);
    for &a in &p.assignment {
        buf.put_u16_le(a);
    }
    frame(PART_MAGIC, &buf)
}

fn decode_partitioning(data: &[u8]) -> Result<Partitioning> {
    let mut buf = unframe(PART_MAGIC, data)?;
    let k = codec::get_u32(&mut buf)? as usize;
    let n = codec::get_u64(&mut buf)? as usize;
    if buf.remaining() != n * 2 {
        return Err(GofsError::Corrupt("assignment length mismatch".into()));
    }
    let assignment = (0..n).map(|_| buf.get_u16_le()).collect();
    Ok(Partitioning { assignment, k })
}

/// Split a partition's subgraph list into bins of at most `binning`, in
/// [`SubgraphId`] order. Writer and loader both derive bins through this
/// single function so they always agree.
pub fn bins_for_partition(
    pg: &PartitionedGraph,
    partition: u16,
    binning: usize,
) -> Vec<Vec<SubgraphId>> {
    pg.subgraphs_of_partition(partition)
        .chunks(binning)
        .map(|c| c.to_vec())
        .collect()
}

/// Streaming dataset writer: feed instances in timestep order; slices flush
/// to disk whenever a pack fills.
pub struct GofsWriter {
    dir: PathBuf,
    pg: Arc<PartitionedGraph>,
    start_time: i64,
    period: i64,
    packing: usize,
    binning: usize,
    /// Buffered projections: `pending[partition][bin][sg_in_bin][t_offset]`.
    pending: Vec<Vec<Vec<Vec<SubgraphInstance>>>>,
    bins: Vec<Vec<Vec<SubgraphId>>>,
    next_timestep: usize,
    pack_index: u32,
}

impl GofsWriter {
    /// Create the dataset directory structure and an empty writer.
    pub fn create(
        dir: impl AsRef<Path>,
        pg: Arc<PartitionedGraph>,
        start_time: i64,
        period: i64,
        packing: usize,
        binning: usize,
    ) -> Result<Self> {
        assert!(packing >= 1 && binning >= 1, "packing/binning must be ≥ 1");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let k = pg.num_partitions();
        for p in 0..k {
            std::fs::create_dir_all(dir.join(format!("partition-{p:03}")))?;
        }
        write_atomic(
            dir.join("template.bin"),
            &codec::encode_template(pg.template()),
        )?;
        write_atomic(
            dir.join("partitioning.bin"),
            &encode_partitioning(pg.partitioning()),
        )?;
        let bins: Vec<Vec<Vec<SubgraphId>>> = (0..k)
            .map(|p| bins_for_partition(&pg, p as u16, binning))
            .collect();
        let pending = bins
            .iter()
            .map(|pbins| pbins.iter().map(|b| vec![Vec::new(); b.len()]).collect())
            .collect();
        Ok(GofsWriter {
            dir,
            pg,
            start_time,
            period,
            packing,
            binning,
            pending,
            bins,
            next_timestep: 0,
            pack_index: 0,
        })
    }

    /// Project and buffer one instance; flushes full packs to disk.
    pub fn append_instance(&mut self, instance: &GraphInstance) -> Result<()> {
        instance.validate_against(self.pg.template())?;
        let t = self.next_timestep;
        for p in 0..self.pg.num_partitions() {
            for (bi, bin) in self.bins[p].iter().enumerate() {
                for (si, &sg_id) in bin.iter().enumerate() {
                    let sg = self.pg.subgraph(sg_id);
                    self.pending[p][bi][si].push(SubgraphInstance::project(instance, sg, t));
                }
            }
        }
        self.next_timestep += 1;
        if self.next_timestep.is_multiple_of(self.packing) {
            self.flush_pack()?;
        }
        Ok(())
    }

    fn flush_pack(&mut self) -> Result<()> {
        let t_start = self.pack_index as usize * self.packing;
        for p in 0..self.pg.num_partitions() {
            for (bi, bin) in self.bins[p].iter().enumerate() {
                let rows: Vec<Vec<SubgraphInstance>> =
                    self.pending[p][bi].iter_mut().map(std::mem::take).collect();
                if rows.first().is_none_or(|r| r.is_empty()) {
                    continue;
                }
                let key = SliceKey {
                    bin: bi as u32,
                    pack: self.pack_index,
                };
                let data = encode_slice(p as u16, key, bin, t_start, &rows);
                let path = self
                    .dir
                    .join(format!("partition-{p:03}"))
                    .join(key.file_name());
                write_atomic(path, &data)?;
            }
        }
        self.pack_index += 1;
        Ok(())
    }

    /// Flush any partial pack and write `meta.bin`. Returns the final meta.
    pub fn finish(mut self) -> Result<DatasetMeta> {
        if !self.next_timestep.is_multiple_of(self.packing) {
            self.flush_pack()?;
        }
        let meta = DatasetMeta {
            name: self.pg.template().name().to_string(),
            start_time: self.start_time,
            period: self.period,
            num_timesteps: self.next_timestep,
            num_partitions: self.pg.num_partitions(),
            packing: self.packing,
            binning: self.binning,
        };
        write_atomic(self.dir.join("meta.bin"), &meta.encode())?;
        Ok(meta)
    }
}

/// Write a whole in-memory collection as a GoFS dataset in one call.
pub fn write_dataset(
    dir: impl AsRef<Path>,
    pg: Arc<PartitionedGraph>,
    collection: &TimeSeriesCollection,
    packing: usize,
    binning: usize,
) -> Result<DatasetMeta> {
    let mut w = GofsWriter::create(
        dir,
        pg,
        collection.start_time(),
        collection.period(),
        packing,
        binning,
    )?;
    for g in collection.iter() {
        w.append_instance(g)?;
    }
    w.finish()
}

/// An opened GoFS dataset.
#[derive(Clone, Debug)]
pub struct GofsStore {
    dir: PathBuf,
    meta: DatasetMeta,
    template: Arc<GraphTemplate>,
    partitioning: Partitioning,
}

impl GofsStore {
    /// Open a dataset directory written by [`GofsWriter`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let meta = DatasetMeta::decode(&std::fs::read(dir.join("meta.bin"))?)?;
        let template = Arc::new(codec::decode_template(&std::fs::read(
            dir.join("template.bin"),
        )?)?);
        let partitioning = decode_partitioning(&std::fs::read(dir.join("partitioning.bin"))?)?;
        partitioning
            .validate(&template)
            .map_err(GofsError::Corrupt)?;
        Ok(GofsStore {
            dir,
            meta,
            template,
            partitioning,
        })
    }

    /// Dataset metadata.
    pub fn meta(&self) -> &DatasetMeta {
        &self.meta
    }

    /// The decoded template.
    pub fn template(&self) -> &Arc<GraphTemplate> {
        &self.template
    }

    /// The stored partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Rebuild the partitioned view (subgraph discovery is deterministic,
    /// so ids match the writer's).
    pub fn partitioned_graph(&self) -> PartitionedGraph {
        discover_subgraphs(self.template.clone(), self.partitioning.clone())
    }

    /// Path of one slice file.
    pub fn slice_path(&self, partition: u16, key: SliceKey) -> PathBuf {
        self.dir
            .join(format!("partition-{partition:03}"))
            .join(key.file_name())
    }

    /// Dataset root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::decode_slice;
    use tempograph_core::AttrType;
    use tempograph_core::TemplateBuilder;
    use tempograph_partition::{MultilevelPartitioner, Partitioner};

    fn tmp() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gofs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_dataset() -> (Arc<PartitionedGraph>, TimeSeriesCollection) {
        let mut b = TemplateBuilder::new("store-test", false);
        b.vertex_schema().add("v", AttrType::Long);
        b.edge_schema().add("w", AttrType::Double);
        for i in 0..20 {
            b.add_vertex(i);
        }
        for i in 0..19u64 {
            b.add_edge(i, i, i + 1).unwrap();
        }
        let t = Arc::new(b.finalize().unwrap());
        let part = MultilevelPartitioner::default().partition(&t, 2);
        let pg = Arc::new(discover_subgraphs(t.clone(), part));
        let mut coll = TimeSeriesCollection::new(t, 100, 5);
        for ts in 0..7 {
            let mut g = coll.new_instance();
            for (i, x) in g.vertex_i64_mut("v").unwrap().iter_mut().enumerate() {
                *x = (ts * 100 + i) as i64;
            }
            for (i, x) in g.edge_f64_mut("w").unwrap().iter_mut().enumerate() {
                *x = ts as f64 + i as f64 / 100.0;
            }
            coll.push(g).unwrap();
        }
        (pg, coll)
    }

    #[test]
    fn write_and_reopen_dataset() {
        let dir = tmp();
        let (pg, coll) = small_dataset();
        let meta = write_dataset(&dir, pg.clone(), &coll, 3, 2).unwrap();
        assert_eq!(meta.num_timesteps, 7);
        assert_eq!(meta.packing, 3);

        let store = GofsStore::open(&dir).unwrap();
        assert_eq!(store.meta(), &meta);
        assert_eq!(store.template().num_vertices(), 20);
        assert_eq!(store.partitioning(), pg.partitioning());

        // Re-discovered subgraphs match the writer's ids.
        let pg2 = store.partitioned_graph();
        assert_eq!(pg2.subgraphs().len(), pg.subgraphs().len());
        for (a, b) in pg.subgraphs().iter().zip(pg2.subgraphs().iter()) {
            assert_eq!(a.vertices(), b.vertices());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slice_files_cover_all_packs() {
        let dir = tmp();
        let (pg, coll) = small_dataset();
        write_dataset(&dir, pg.clone(), &coll, 3, 2).unwrap();
        let store = GofsStore::open(&dir).unwrap();
        // 7 timesteps, packing 3 ⇒ packs 0,1,2 (last partial).
        for p in 0..pg.num_partitions() as u16 {
            let n_bins = bins_for_partition(&pg, p, 2).len();
            for bin in 0..n_bins as u32 {
                for pack in 0..3u32 {
                    let path = store.slice_path(p, SliceKey { bin, pack });
                    let data = std::fs::read(&path).expect("slice exists");
                    let slice = decode_slice(&data).unwrap();
                    assert_eq!(slice.partition, p);
                    let expect_n = if pack == 2 { 1 } else { 3 };
                    assert_eq!(slice.n_timesteps, expect_n, "pack {pack}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn projected_values_roundtrip_through_disk() {
        let dir = tmp();
        let (pg, coll) = small_dataset();
        write_dataset(&dir, pg.clone(), &coll, 10, 5).unwrap();
        let store = GofsStore::open(&dir).unwrap();
        // Pick a subgraph + timestep and compare against direct projection.
        let sg = &pg.subgraphs()[0];
        let slice = decode_slice(
            &std::fs::read(store.slice_path(sg.partition(), SliceKey { bin: 0, pack: 0 })).unwrap(),
        )
        .unwrap();
        let from_disk = slice.get(sg.id(), 4).expect("covered");
        let direct = SubgraphInstance::project(coll.get(4).unwrap(), sg, 4);
        assert_eq!(*from_disk, direct);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_roundtrip() {
        let m = DatasetMeta {
            name: "x".into(),
            start_time: -5,
            period: 60,
            num_timesteps: 50,
            num_partitions: 9,
            packing: 10,
            binning: 5,
        };
        assert_eq!(DatasetMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn partitioning_roundtrip() {
        let p = Partitioning {
            assignment: vec![0, 2, 1, 2, 0],
            k: 3,
        };
        assert_eq!(decode_partitioning(&encode_partitioning(&p)).unwrap(), p);
    }

    #[test]
    fn open_missing_dir_fails() {
        assert!(GofsStore::open("/nonexistent/gofs-dataset").is_err());
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_staging_file() {
        let dir = tmp();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(
            !tmp_sibling(&path).exists(),
            "staging file must be renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
