//! Property-based tests for the GoFS binary codec and slice format.

use bytes::BytesMut;
use proptest::prelude::*;
use tempograph_core::{AttrType, Column, Schema, TemplateBuilder};
use tempograph_gofs::codec::{
    decode_template, encode_template, frame, frame_v1, get_column, get_delta_column, get_schema,
    put_column, put_delta_column, put_schema, unframe,
};
use tempograph_gofs::slice::{decode_slice, encode_slice, encode_slice_v1, SliceKey};
use tempograph_gofs::SubgraphInstance;
use tempograph_partition::SubgraphId;

fn arb_column() -> impl Strategy<Value = Column> {
    prop_oneof![
        proptest::collection::vec(any::<i64>(), 0..50).prop_map(Column::Long),
        proptest::collection::vec(
            any::<f64>().prop_filter("no NaN eq issues", |x| !x.is_nan()),
            0..50
        )
        .prop_map(Column::Double),
        proptest::collection::vec(any::<bool>(), 0..70).prop_map(Column::Bool),
        proptest::collection::vec("[\\PC]{0,16}".prop_map(String::from), 0..20)
            .prop_map(Column::Text),
        proptest::collection::vec(proptest::collection::vec(any::<i64>(), 0..5), 0..15)
            .prop_map(Column::LongList),
        proptest::collection::vec(
            proptest::collection::vec("[a-z#0-9]{0,10}".prop_map(String::from), 0..4),
            0..12
        )
        .prop_map(Column::TextList),
    ]
}

proptest! {
    /// Every column round-trips exactly and consumes exactly its bytes.
    #[test]
    fn column_roundtrip(col in arb_column()) {
        let mut buf = BytesMut::new();
        put_column(&mut buf, &col);
        let mut bytes = buf.freeze();
        let back = get_column(&mut bytes).unwrap();
        prop_assert_eq!(back, col);
        prop_assert_eq!(bytes.len(), 0);
    }

    /// Sequences of columns decode in order (no framing bleed).
    #[test]
    fn column_sequences_roundtrip(cols in proptest::collection::vec(arb_column(), 0..6)) {
        let mut buf = BytesMut::new();
        for c in &cols {
            put_column(&mut buf, c);
        }
        let mut bytes = buf.freeze();
        for c in &cols {
            prop_assert_eq!(&get_column(&mut bytes).unwrap(), c);
        }
        prop_assert_eq!(bytes.len(), 0);
    }

    /// Schemas with unique names round-trip.
    #[test]
    fn schema_roundtrip(names in proptest::collection::hash_set("[a-z]{1,10}", 0..8)) {
        let mut s = Schema::new();
        let types = [
            AttrType::Long, AttrType::Double, AttrType::Bool,
            AttrType::Text, AttrType::LongList, AttrType::TextList,
        ];
        for (i, name) in names.iter().enumerate() {
            s.add(name.clone(), types[i % types.len()]);
        }
        let mut buf = BytesMut::new();
        put_schema(&mut buf, &s);
        prop_assert_eq!(get_schema(&mut buf.freeze()).unwrap(), s);
    }

    /// Any single-byte corruption of a framed payload is detected (either
    /// by the checksum, magic, version or length checks).
    #[test]
    fn frame_detects_any_single_byte_flip(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let framed = frame(*b"TEST", &payload);
        let mut evil = framed.to_vec();
        let pos = ((evil.len() - 1) as f64 * pos_frac) as usize;
        evil[pos] ^= flip;
        prop_assert!(unframe(*b"TEST", &evil).is_err());
    }

    /// Any truncation of a framed payload is detected.
    #[test]
    fn frame_detects_truncation(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        keep_frac in 0.0f64..1.0,
    ) {
        let framed = frame(*b"TEST", &payload);
        let keep = ((framed.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(unframe(*b"TEST", &framed[..keep]).is_err());
    }

    /// Random templates survive the codec byte-for-byte semantically.
    #[test]
    fn template_roundtrip(
        n in 1u64..40,
        edges in proptest::collection::vec((0u64..40, 0u64..40), 0..80),
        directed in any::<bool>(),
    ) {
        let mut b = TemplateBuilder::new("prop", directed);
        b.vertex_schema().add("x", AttrType::Double);
        b.edge_schema().add("y", AttrType::TextList);
        for v in 0..n {
            b.add_vertex(v * 3 + 1); // non-dense external ids
        }
        for (i, (s, d)) in edges.iter().enumerate() {
            b.add_edge(i as u64, (s % n) * 3 + 1, (d % n) * 3 + 1).unwrap();
        }
        let t = b.finalize().unwrap();
        let back = decode_template(&encode_template(&t)).unwrap();
        prop_assert_eq!(back.num_vertices(), t.num_vertices());
        prop_assert_eq!(back.num_edges(), t.num_edges());
        prop_assert_eq!(back.directed(), t.directed());
        prop_assert_eq!(back.vertex_schema(), t.vertex_schema());
        prop_assert_eq!(back.edge_schema(), t.edge_schema());
        for v in t.vertices() {
            prop_assert_eq!(back.vertex_id(v), t.vertex_id(v));
            prop_assert_eq!(back.neighbors(v), t.neighbors(v));
        }
    }

    /// Slice files round-trip arbitrary projected instances.
    #[test]
    fn slice_roundtrip(
        n_sg in 1usize..4,
        n_ts in 1usize..6,
        t_start in 0usize..40,
        cols in proptest::collection::vec(arb_column(), 1..3),
    ) {
        let sg_ids: Vec<SubgraphId> = (0..n_sg as u32).map(SubgraphId).collect();
        let rows: Vec<Vec<SubgraphInstance>> = (0..n_sg)
            .map(|_| {
                (0..n_ts)
                    .map(|toff| SubgraphInstance {
                        timestep: t_start + toff,
                        timestamp: (t_start + toff) as i64 * 10,
                        vertex_cols: cols.clone(),
                        edge_cols: vec![],
                    })
                    .collect()
            })
            .collect();
        let data = encode_slice(2, SliceKey { bin: 1, pack: 3 }, &sg_ids, t_start, &rows);
        let back = decode_slice(&data).unwrap();
        prop_assert_eq!(back.partition, 2);
        prop_assert_eq!(back.n_timesteps, n_ts);
        for (i, sg) in sg_ids.iter().enumerate() {
            for (toff, row) in rows[i].iter().enumerate() {
                let got = back.get(*sg, t_start + toff).unwrap();
                prop_assert_eq!(&*got, row);
            }
        }
    }

    /// The v2 (columnar, delta) and v1 (row-major) encodings of the same
    /// rows decode to identical instances — and legacy v1 files keep
    /// loading after the format-version bump.
    #[test]
    fn v2_decodes_identically_to_v1(
        n_sg in 1usize..4,
        n_ts in 1usize..6,
        cols in proptest::collection::vec(arb_column(), 1..3),
        churn in proptest::collection::vec((0usize..50, any::<i64>()), 0..8),
    ) {
        let sg_ids: Vec<SubgraphId> = (0..n_sg as u32).map(SubgraphId).collect();
        let rows: Vec<Vec<SubgraphInstance>> = (0..n_sg)
            .map(|sgi| {
                (0..n_ts)
                    .map(|toff| {
                        // Perturb a few rows per timestep so deltas are
                        // non-trivial (and differ per subgraph).
                        let mut my = cols.clone();
                        for &(at, val) in &churn {
                            if let Column::Long(v) = &mut my[0] {
                                if !v.is_empty() {
                                    let i = (at + toff + sgi) % v.len();
                                    v[i] = val;
                                }
                            }
                        }
                        SubgraphInstance {
                            timestep: toff,
                            timestamp: toff as i64,
                            vertex_cols: my,
                            edge_cols: vec![],
                        }
                    })
                    .collect()
            })
            .collect();
        let key = SliceKey { bin: 0, pack: 0 };
        let v2 = decode_slice(&encode_slice(1, key, &sg_ids, 0, &rows)).unwrap();
        let v1 = decode_slice(&encode_slice_v1(1, key, &sg_ids, 0, &rows)).unwrap();
        for (i, sg) in sg_ids.iter().enumerate() {
            for (toff, row) in rows[i].iter().enumerate() {
                prop_assert_eq!(&*v1.get(*sg, toff).unwrap(), row);
                prop_assert_eq!(&*v2.get(*sg, toff).unwrap(), row);
            }
        }
    }

    /// A delta record between any two same-shaped columns round-trips and
    /// consumes exactly its bytes (sparse or dense-fallback alike).
    #[test]
    fn delta_column_roundtrip(base in arb_column(), perm in any::<u64>()) {
        // Derive `cur` from `base` by perturbing a pseudo-random subset.
        let mut cur = base.clone();
        let n = cur.len();
        if n > 0 {
            match &mut cur {
                Column::Long(v) => {
                    for (i, x) in v.iter_mut().enumerate() {
                        if (perm >> (i % 64)) & 1 == 1 { *x = x.wrapping_add(7); }
                    }
                }
                Column::Double(v) => {
                    for (i, x) in v.iter_mut().enumerate() {
                        if (perm >> (i % 64)) & 1 == 1 { *x += 1.0; }
                    }
                }
                Column::Bool(v) => {
                    for (i, x) in v.iter_mut().enumerate() {
                        if (perm >> (i % 64)) & 1 == 1 { *x = !*x; }
                    }
                }
                Column::Text(v) => {
                    for (i, x) in v.iter_mut().enumerate() {
                        if (perm >> (i % 64)) & 1 == 1 { x.push('!'); }
                    }
                }
                Column::LongList(v) => {
                    for (i, x) in v.iter_mut().enumerate() {
                        if (perm >> (i % 64)) & 1 == 1 { x.push(9); }
                    }
                }
                Column::TextList(v) => {
                    for (i, x) in v.iter_mut().enumerate() {
                        if (perm >> (i % 64)) & 1 == 1 { x.push("z".into()); }
                    }
                }
            }
        }
        let mut buf = BytesMut::new();
        put_delta_column(&mut buf, &base, &cur);
        let mut bytes = buf.freeze();
        let back = get_delta_column(&mut bytes, &base).unwrap();
        prop_assert_eq!(back, cur);
        prop_assert_eq!(bytes.len(), 0);
    }

    /// Corrupting a v2 slice *behind the checksum* (flip a payload byte,
    /// re-frame so the checksum matches) never panics: decoding and
    /// materializing every cell either succeeds or yields a typed error.
    /// Truncating the payload always fails outright at decode.
    #[test]
    fn corrupted_v2_payload_never_panics(
        n_ts in 2usize..5,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
        cut in 1usize..40,
    ) {
        let sg_ids = vec![SubgraphId(0), SubgraphId(1)];
        let rows: Vec<Vec<SubgraphInstance>> = (0..2)
            .map(|sgi| {
                (0..n_ts)
                    .map(|toff| SubgraphInstance {
                        timestep: toff,
                        timestamp: toff as i64,
                        vertex_cols: vec![Column::Long(
                            (0..16).map(|i| (i + toff + sgi) as i64).collect(),
                        )],
                        edge_cols: vec![Column::Text(vec![format!("e{toff}")])],
                    })
                    .collect()
            })
            .collect();
        const MAGIC: [u8; 4] = *b"GFSL";
        let framed = encode_slice(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 0, &rows);
        let payload = unframe(MAGIC, &framed).unwrap();

        // Bit flip anywhere in the payload, checksum made valid again.
        let mut warped = payload.to_vec();
        let pos = ((warped.len() - 1) as f64 * pos_frac) as usize;
        warped[pos] ^= flip;
        if let Ok(slice) = decode_slice(&frame(MAGIC, &warped)) {
            for &sg in &slice.sg_ids.clone() {
                for t in slice.t_start..slice.t_start + slice.n_timesteps {
                    let _ = slice.get(sg, t); // must not panic
                }
            }
        }

        // Truncation of the payload (any amount) is always rejected.
        let keep = payload.len().saturating_sub(cut).max(1);
        prop_assert!(decode_slice(&frame(MAGIC, &payload[..keep])).is_err());

        // Same story for a v1 frame around a truncated v1 payload.
        let framed1 = encode_slice_v1(0, SliceKey { bin: 0, pack: 0 }, &sg_ids, 0, &rows);
        let payload1 = unframe(MAGIC, &framed1).unwrap();
        let keep1 = payload1.len().saturating_sub(cut).max(1);
        prop_assert!(decode_slice(&frame_v1(MAGIC, &payload1[..keep1])).is_err());
    }
}
