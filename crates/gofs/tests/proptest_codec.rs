//! Property-based tests for the GoFS binary codec and slice format.

use bytes::BytesMut;
use proptest::prelude::*;
use tempograph_core::{AttrType, Column, Schema, TemplateBuilder};
use tempograph_gofs::codec::{
    decode_template, encode_template, frame, get_column, get_schema, put_column, put_schema,
    unframe,
};
use tempograph_gofs::slice::{decode_slice, encode_slice, SliceKey};
use tempograph_gofs::SubgraphInstance;
use tempograph_partition::SubgraphId;

fn arb_column() -> impl Strategy<Value = Column> {
    prop_oneof![
        proptest::collection::vec(any::<i64>(), 0..50).prop_map(Column::Long),
        proptest::collection::vec(
            any::<f64>().prop_filter("no NaN eq issues", |x| !x.is_nan()),
            0..50
        )
        .prop_map(Column::Double),
        proptest::collection::vec(any::<bool>(), 0..70).prop_map(Column::Bool),
        proptest::collection::vec("[\\PC]{0,16}".prop_map(String::from), 0..20)
            .prop_map(Column::Text),
        proptest::collection::vec(proptest::collection::vec(any::<i64>(), 0..5), 0..15)
            .prop_map(Column::LongList),
        proptest::collection::vec(
            proptest::collection::vec("[a-z#0-9]{0,10}".prop_map(String::from), 0..4),
            0..12
        )
        .prop_map(Column::TextList),
    ]
}

proptest! {
    /// Every column round-trips exactly and consumes exactly its bytes.
    #[test]
    fn column_roundtrip(col in arb_column()) {
        let mut buf = BytesMut::new();
        put_column(&mut buf, &col);
        let mut bytes = buf.freeze();
        let back = get_column(&mut bytes).unwrap();
        prop_assert_eq!(back, col);
        prop_assert_eq!(bytes.len(), 0);
    }

    /// Sequences of columns decode in order (no framing bleed).
    #[test]
    fn column_sequences_roundtrip(cols in proptest::collection::vec(arb_column(), 0..6)) {
        let mut buf = BytesMut::new();
        for c in &cols {
            put_column(&mut buf, c);
        }
        let mut bytes = buf.freeze();
        for c in &cols {
            prop_assert_eq!(&get_column(&mut bytes).unwrap(), c);
        }
        prop_assert_eq!(bytes.len(), 0);
    }

    /// Schemas with unique names round-trip.
    #[test]
    fn schema_roundtrip(names in proptest::collection::hash_set("[a-z]{1,10}", 0..8)) {
        let mut s = Schema::new();
        let types = [
            AttrType::Long, AttrType::Double, AttrType::Bool,
            AttrType::Text, AttrType::LongList, AttrType::TextList,
        ];
        for (i, name) in names.iter().enumerate() {
            s.add(name.clone(), types[i % types.len()]);
        }
        let mut buf = BytesMut::new();
        put_schema(&mut buf, &s);
        prop_assert_eq!(get_schema(&mut buf.freeze()).unwrap(), s);
    }

    /// Any single-byte corruption of a framed payload is detected (either
    /// by the checksum, magic, version or length checks).
    #[test]
    fn frame_detects_any_single_byte_flip(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let framed = frame(*b"TEST", &payload);
        let mut evil = framed.to_vec();
        let pos = ((evil.len() - 1) as f64 * pos_frac) as usize;
        evil[pos] ^= flip;
        prop_assert!(unframe(*b"TEST", &evil).is_err());
    }

    /// Any truncation of a framed payload is detected.
    #[test]
    fn frame_detects_truncation(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        keep_frac in 0.0f64..1.0,
    ) {
        let framed = frame(*b"TEST", &payload);
        let keep = ((framed.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(unframe(*b"TEST", &framed[..keep]).is_err());
    }

    /// Random templates survive the codec byte-for-byte semantically.
    #[test]
    fn template_roundtrip(
        n in 1u64..40,
        edges in proptest::collection::vec((0u64..40, 0u64..40), 0..80),
        directed in any::<bool>(),
    ) {
        let mut b = TemplateBuilder::new("prop", directed);
        b.vertex_schema().add("x", AttrType::Double);
        b.edge_schema().add("y", AttrType::TextList);
        for v in 0..n {
            b.add_vertex(v * 3 + 1); // non-dense external ids
        }
        for (i, (s, d)) in edges.iter().enumerate() {
            b.add_edge(i as u64, (s % n) * 3 + 1, (d % n) * 3 + 1).unwrap();
        }
        let t = b.finalize().unwrap();
        let back = decode_template(&encode_template(&t)).unwrap();
        prop_assert_eq!(back.num_vertices(), t.num_vertices());
        prop_assert_eq!(back.num_edges(), t.num_edges());
        prop_assert_eq!(back.directed(), t.directed());
        prop_assert_eq!(back.vertex_schema(), t.vertex_schema());
        prop_assert_eq!(back.edge_schema(), t.edge_schema());
        for v in t.vertices() {
            prop_assert_eq!(back.vertex_id(v), t.vertex_id(v));
            prop_assert_eq!(back.neighbors(v), t.neighbors(v));
        }
    }

    /// Slice files round-trip arbitrary projected instances.
    #[test]
    fn slice_roundtrip(
        n_sg in 1usize..4,
        n_ts in 1usize..6,
        t_start in 0usize..40,
        cols in proptest::collection::vec(arb_column(), 1..3),
    ) {
        let sg_ids: Vec<SubgraphId> = (0..n_sg as u32).map(SubgraphId).collect();
        let rows: Vec<Vec<SubgraphInstance>> = (0..n_sg)
            .map(|_| {
                (0..n_ts)
                    .map(|toff| SubgraphInstance {
                        timestep: t_start + toff,
                        timestamp: (t_start + toff) as i64 * 10,
                        vertex_cols: cols.clone(),
                        edge_cols: vec![],
                    })
                    .collect()
            })
            .collect();
        let data = encode_slice(2, SliceKey { bin: 1, pack: 3 }, &sg_ids, t_start, &rows);
        let back = decode_slice(&data).unwrap();
        prop_assert_eq!(back.partition, 2);
        prop_assert_eq!(back.n_timesteps, n_ts);
        for (i, sg) in sg_ids.iter().enumerate() {
            for (toff, row) in rows[i].iter().enumerate() {
                let got = back.get(*sg, t_start + toff).unwrap();
                prop_assert_eq!(&**got, row);
            }
        }
    }
}
