//! Backwards compatibility: a dataset written entirely in the legacy
//! version-1 format (row-major slices, byte-FNV frames) must keep loading
//! after the format-version bump, instance-for-instance equal to the same
//! data written in the current format.

use std::path::Path;
use std::sync::Arc;
use tempograph_core::{AttrType, TemplateBuilder, TimeSeriesCollection};
use tempograph_gofs::codec::{frame_v1, unframe, FORMAT_V1};
use tempograph_gofs::slice::{decode_slice, encode_slice_v1, SliceKey};
use tempograph_gofs::store::{bins_for_partition, write_dataset, GofsStore};
use tempograph_gofs::validate::validate_dataset;
use tempograph_gofs::{InstanceLoader, SubgraphInstance};
use tempograph_partition::{
    discover_subgraphs, MultilevelPartitioner, PartitionedGraph, Partitioner,
};

const TIMESTEPS: usize = 13;
const PACKING: usize = 5;
const BINNING: usize = 2;

fn dataset(dir: &Path) -> (Arc<PartitionedGraph>, GofsStore) {
    let mut b = TemplateBuilder::new("v1compat", false);
    b.vertex_schema().add("load", AttrType::Double);
    b.vertex_schema().add("tweets", AttrType::TextList);
    b.edge_schema().add("latency", AttrType::Double);
    for i in 0..24 {
        b.add_vertex(i);
    }
    for i in 0..23u64 {
        b.add_edge(i, i, i + 1).unwrap();
    }
    let t = Arc::new(b.finalize().unwrap());
    let part = MultilevelPartitioner::default().partition(&t, 3);
    let pg = Arc::new(discover_subgraphs(t.clone(), part));
    let mut coll = TimeSeriesCollection::new(t, 0, 60);
    for ts in 0..TIMESTEPS {
        let mut g = coll.new_instance();
        for (i, x) in g.vertex_f64_mut("load").unwrap().iter_mut().enumerate() {
            // Slowly-varying: only a few rows change per step, so v2 slices
            // really exercise the delta path before the rewrite below.
            *x = if i % 7 == ts % 7 { ts as f64 } else { 1.0 };
        }
        g.vertex_text_list_mut("tweets").unwrap()[ts % 24].push(format!("#t{ts}"));
        for (i, x) in g.edge_f64_mut("latency").unwrap().iter_mut().enumerate() {
            *x = (i % 5) as f64 + (ts % 3) as f64;
        }
        coll.push(g).unwrap();
    }
    write_dataset(dir, pg.clone(), &coll, PACKING, BINNING).unwrap();
    (pg, GofsStore::open(dir).unwrap())
}

/// Re-frame a version-independent payload file (meta/template/partitioning)
/// with the legacy v1 frame; the payload bytes are identical across
/// versions, only the frame differs.
fn reframe_file_v1(path: &Path) {
    let data = std::fs::read(path).unwrap();
    let magic: [u8; 4] = data[..4].try_into().unwrap();
    let payload = unframe(magic, &data).unwrap();
    std::fs::write(path, frame_v1(magic, &payload)).unwrap();
}

/// Rewrite every slice file in the store as a legacy v1 slice holding the
/// same instances.
fn downgrade_slices(store: &GofsStore, pg: &PartitionedGraph) {
    let meta = store.meta().clone();
    let n_packs = meta.num_timesteps.div_ceil(meta.packing);
    for p in 0..meta.num_partitions as u16 {
        let bins = bins_for_partition(pg, p, meta.binning);
        for (bi, bin) in bins.iter().enumerate() {
            for pack in 0..n_packs as u32 {
                let key = SliceKey {
                    bin: bi as u32,
                    pack,
                };
                let path = store.slice_path(p, key);
                let slice = decode_slice(&std::fs::read(&path).unwrap()).unwrap();
                let rows: Vec<Vec<SubgraphInstance>> = bin
                    .iter()
                    .map(|&sg| {
                        (slice.t_start..slice.t_start + slice.n_timesteps)
                            .map(|t| (*slice.get(sg, t).unwrap()).clone())
                            .collect()
                    })
                    .collect();
                let v1 = encode_slice_v1(p, key, bin, slice.t_start, &rows);
                std::fs::write(&path, v1).unwrap();
            }
        }
    }
}

fn load_everything(
    store: &GofsStore,
    pg: &Arc<PartitionedGraph>,
) -> Vec<(u32, usize, SubgraphInstance)> {
    let mut out = Vec::new();
    for p in 0..store.meta().num_partitions as u16 {
        let mut loader = InstanceLoader::with_default_capacity(store.clone(), pg, p);
        for &sg in pg.subgraphs_of_partition(p) {
            for t in 0..store.meta().num_timesteps {
                out.push((sg.0, t, (*loader.load(sg, t).unwrap()).clone()));
            }
        }
    }
    out
}

#[test]
fn v1_dataset_loads_identically() {
    let dir = std::env::temp_dir().join(format!("gofs-v1compat-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (pg, store) = dataset(&dir);

    // Snapshot what the current (v2) format yields.
    let expected = load_everything(&store, &pg);
    assert_eq!(
        expected.len(),
        pg.subgraphs().len() * TIMESTEPS,
        "snapshot covers every (subgraph, timestep)"
    );

    // Downgrade the whole store to the legacy format on disk.
    downgrade_slices(&store, &pg);
    for f in ["meta.bin", "template.bin", "partitioning.bin"] {
        reframe_file_v1(&dir.join(f));
    }
    // Every file now genuinely carries the v1 frame version.
    for f in ["meta.bin", "template.bin", "partitioning.bin"] {
        let data = std::fs::read(dir.join(f)).unwrap();
        assert_eq!(u16::from_le_bytes([data[4], data[5]]), FORMAT_V1, "{f}");
    }
    let some_slice = store.slice_path(0, SliceKey { bin: 0, pack: 0 });
    let data = std::fs::read(&some_slice).unwrap();
    assert_eq!(u16::from_le_bytes([data[4], data[5]]), FORMAT_V1);

    // Re-open from scratch: decodes, validates, and loads equal instances.
    let reopened = GofsStore::open(&dir).unwrap();
    validate_dataset(&reopened, &pg).unwrap();
    let actual = load_everything(&reopened, &pg);
    assert_eq!(actual.len(), expected.len());
    for ((sg_a, t_a, inst_a), (sg_b, t_b, inst_b)) in actual.iter().zip(&expected) {
        assert_eq!((sg_a, t_a), (sg_b, t_b));
        assert_eq!(inst_a, inst_b, "{sg_a}@{t_a} differs between v1 and v2");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
