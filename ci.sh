#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 verification gate.
# Usage: ./ci.sh                 (full pipeline)
#        ./ci.sh --lint          (invariant-checker stage only)
#        ./ci.sh --faults        (fault-tolerance stage only)
#        ./ci.sh --transport     (cross-transport equivalence stage only)
#        ./ci.sh --inspect      (run-ledger / inspect CLI stage only)
#        ./ci.sh --bench-report  (regenerate BENCH_tempograph.json + gate)
set -euo pipefail
cd "$(dirname "$0")"

FAULTS_ONLY=0
LINT_ONLY=0
INSPECT_ONLY=0
TRANSPORT_ONLY=0
BENCH_REPORT=0
for arg in "$@"; do
    case "$arg" in
        --faults) FAULTS_ONLY=1 ;;
        --lint) LINT_ONLY=1 ;;
        --inspect) INSPECT_ONLY=1 ;;
        --transport) TRANSPORT_ONLY=1 ;;
        --bench-report) BENCH_REPORT=1 ;;
        *) echo "unknown argument: $arg (expected --lint, --faults, --transport, --inspect, or --bench-report)" >&2; exit 2 ;;
    esac
done

# Workspace analyzer: the v2 call-graph passes must come back clean —
# transitive panic-freedom / clock / allocation rules over the hot-path
# closure (P01, D02, H01 with root→violation chains), the per-file rules
# (D01-D03, A01, W01, F01), and the wire-schema lock against the
# committed schemas/ goldens (W02; drift without a version bump exits 2)
# — modulo the committed, justified lint-allow.toml. Fast: runs before
# the main build. The self-test stage exercises the analyzer itself: the
# per-rule fixture pairs, the ws_* fixture workspaces (indirect panics,
# trait dispatch, aliases, cfg(test) masking, schema drift), and the
# binary's 0/1/2 exit-code matrix.
lint_stage() {
    echo "==> tempograph-lint: self-test suite (fixtures + exit-code matrix)"
    cargo test -q -p tempograph-lint

    echo "==> tempograph-lint: workspace invariants (transitive P01/D02/H01, D01-D03, A01, W01, F01, W02 schema lock)"
    cargo run -q -p tempograph-lint
}

# Fault-tolerance gate: the recovery-equivalence suite (fixed seeds baked
# into the tests), the seeded fault-plan property tests, and the smoke test
# asserting the disabled hooks add zero hot-path allocations.
faults_stage() {
    echo "==> faults: recovery-equivalence suite (all algorithms, 3 and 6 partitions)"
    cargo test -q --test recovery_equivalence

    echo "==> faults: engine fault-plan property tests (PROPTEST_CASES=${PROPTEST_CASES:-64})"
    PROPTEST_CASES="${PROPTEST_CASES:-64}" \
        cargo test -q -p tempograph-engine --test fault_recovery_prop

    echo "==> faults: checkpoint overhead smoke test (disabled hooks must not allocate)"
    cargo test -q --release --test checkpoint_overhead -- --ignored
}

# Transport gate: every algorithm must produce byte-identical results over
# in-process channels, a localhost TCP thread mesh, and real spawned worker
# processes (the equivalence suite covers all three plus delivery-order
# probes, telemetry equivalence, and frame-codec fuzzing), and the
# `tempograph` binary must drive a 2-process localhost cluster end-to-end —
# plain and with observability armed (worker telemetry shards merged into
# the coordinator registry). Skips loudly when loopback
# sockets are unavailable in the sandbox (the tests print a NOTICE and
# pass; the CLI smoke is guarded the same way).
transport_stage() {
    echo "==> transport: cross-transport equivalence suite (5 algorithms, 3 and 6 partitions)"
    cargo test -q --test transport_equivalence

    echo "==> transport: frame codec property tests (PROPTEST_CASES=${PROPTEST_CASES:-64})"
    PROPTEST_CASES="${PROPTEST_CASES:-64}" \
        cargo test -q --test frame_codec_prop

    echo "==> transport: 2-process localhost smoke via the CLI"
    local work
    work="$(mktemp -d)"
    trap 'rm -rf "$work"' RETURN
    cargo build -q --release --bin tempograph
    local tg=target/release/tempograph
    "$tg" generate --out "$work/ds" --preset carn --scale 0.3 \
        --workload tweets --timesteps 6 --partitions 2 >/dev/null
    "$tg" run --algo hash --data "$work/ds" --transport inprocess \
        > "$work/inproc.txt"
    if "$tg" run --algo hash --data "$work/ds" --transport tcp-process \
            > "$work/tcp.txt"; then
        # Identical summaries modulo the header (transport tag) and the
        # wall-clock line.
        sed -e '/^running /d' -e '/^finished in /d' "$work/inproc.txt" > "$work/a.txt"
        sed -e '/^running /d' -e '/^finished in /d' "$work/tcp.txt" > "$work/b.txt"
        diff -u "$work/a.txt" "$work/b.txt" \
            || { echo "FAIL: tcp-process output differs from in-process" >&2; exit 1; }
        echo "    2-process smoke OK"
    else
        echo "    NOTICE: tcp-process CLI run failed (loopback sockets" \
             "unavailable in this sandbox?); skipping smoke"
    fi

    echo "==> transport: 2-process telemetry smoke (worker shards merged at the coordinator)"
    "$tg" run --algo hash --data "$work/ds" --observe true \
        --transport inprocess > "$work/inproc-obs.txt"
    if "$tg" run --algo hash --data "$work/ds" --observe true \
            --transport tcp-process > "$work/tcp-obs.txt"; then
        sed -e '/^running /d' -e '/^finished in /d' "$work/inproc-obs.txt" > "$work/a-obs.txt"
        sed -e '/^running /d' -e '/^finished in /d' "$work/tcp-obs.txt" > "$work/b-obs.txt"
        diff -u "$work/a-obs.txt" "$work/b-obs.txt" \
            || { echo "FAIL: telemetry-merged registry differs from in-process" >&2; exit 1; }
        # Coordinator snapshot totals must equal the worker-local sums
        # printed beside them (both lines come out of the same run).
        local loc_loads reg_loads spans
        loc_loads="$(awk -F': *' '/^slice loads/{print $2}' "$work/tcp-obs.txt")"
        reg_loads="$(sed -n 's/^registry.*slice loads \([0-9]*\),.*/\1/p' "$work/tcp-obs.txt")"
        [[ -n "$reg_loads" && "$loc_loads" == "$reg_loads" ]] \
            || { echo "FAIL: registry slice-load total ($reg_loads) != worker-local sum ($loc_loads)" >&2; exit 1; }
        # Histogram content only reaches a tcp-process coordinator via
        # telemetry frames — zero observations would mean no shard arrived.
        spans="$(sed -n 's/^registry.*compute spans \([0-9]*\),.*/\1/p' "$work/tcp-obs.txt")"
        [[ -n "$spans" && "$spans" -gt 0 ]] \
            || { echo "FAIL: no compute-span observations in merged registry" >&2; exit 1; }
        echo "    telemetry smoke OK (slice loads $reg_loads, compute spans $spans)"
    else
        echo "    NOTICE: tcp-process telemetry run failed (loopback sockets" \
             "unavailable in this sandbox?); skipping telemetry smoke"
    fi
}

# Best-effort: run the wire-codec and GoFS slice-codec round-trip tests
# under miri to catch UB in the decode paths. The container may lack the
# nightly miri component; skip loudly rather than fail.
miri_stage() {
    echo "==> miri (best effort): wire + slice codec round-trips"
    if ! command -v rustup >/dev/null 2>&1; then
        echo "    rustup not installed; skipping miri"
        return 0
    fi
    if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
        echo "    no nightly toolchain; skipping miri"
        return 0
    fi
    if ! rustup component list --toolchain nightly 2>/dev/null \
            | grep -q 'miri.*(installed)'; then
        echo "    miri component not installed on nightly; skipping miri"
        return 0
    fi
    cargo +nightly miri test -q -p tempograph-engine wire::tests
    cargo +nightly miri test -q -p tempograph-gofs slice::tests
}

# Run-ledger gate: the ledger integration tests (stripped-record
# byte-identity, measured-cost rebalance correctness), the release-only
# ablation + zero-alloc smoke tests, and an end-to-end CLI smoke: two
# seeded deterministic runs must record byte-identical ledger files, and
# list/show/diff/rebalance must all work over them.
inspect_stage() {
    echo "==> ledger: integration tests (byte-identity + rebalance correctness)"
    cargo test -q --test ledger_integration

    echo "==> ledger: rebalance ablation (release; observed makespan must drop)"
    cargo test -q --release --test ledger_integration -- --ignored

    echo "==> ledger: attribution overhead smoke test (disabled must not allocate)"
    cargo test -q --release --test ledger_overhead -- --ignored

    echo "==> inspect CLI smoke: generate -> 2x run --ledger -> list/show/diff/rebalance"
    local work
    work="$(mktemp -d)"
    trap 'rm -rf "$work"' RETURN
    cargo build -q --release --bin tempograph
    local tg=target/release/tempograph
    "$tg" generate --out "$work/ds" --preset carn --scale 0.3 \
        --workload tweets --timesteps 8 --partitions 3 >/dev/null
    "$tg" run --algo hash --data "$work/ds" --ledger "$work/runs-a" \
        --seed 3405691582 --deterministic true >/dev/null
    "$tg" run --algo hash --data "$work/ds" --ledger "$work/runs-b" \
        --seed 3405691582 --deterministic true >/dev/null
    cmp "$work"/runs-a/*.tgrun "$work"/runs-b/*.tgrun \
        || { echo "FAIL: deterministic ledger records differ byte-wise" >&2; exit 1; }
    # The same seeded deterministic run over TCP must record the exact
    # same bytes: its attribution table and counter totals arrive at the
    # coordinator via telemetry frames instead of shared memory.
    if "$tg" run --algo hash --data "$work/ds" --ledger "$work/runs-tcp" \
            --transport tcp --seed 3405691582 --deterministic true >/dev/null; then
        cmp "$work"/runs-b/*.tgrun "$work"/runs-tcp/*.tgrun \
            || { echo "FAIL: tcp ledger record differs byte-wise from in-process" >&2; exit 1; }
        echo "    tcp ledger record byte-identical to in-process"
    else
        echo "    NOTICE: tcp run failed (loopback sockets unavailable" \
             "in this sandbox?); skipping tcp ledger byte-identity"
    fi
    local run
    run="$(basename "$work"/runs-a/*.tgrun .tgrun)"
    "$tg" inspect list --ledger "$work/runs-a" >/dev/null
    "$tg" inspect show "$run" --ledger "$work/runs-a" > "$work/show-a.txt"
    "$tg" inspect show "$run" --ledger "$work/runs-b" > "$work/show-b.txt"
    diff -u "$work/show-a.txt" "$work/show-b.txt" \
        || { echo "FAIL: inspect show is not deterministic" >&2; exit 1; }
    "$tg" inspect show "$run" --ledger "$work/runs-a" --json true > "$work/show-a.json"
    "$tg" inspect show "$run" --ledger "$work/runs-b" --json true > "$work/show-b.json"
    diff -u "$work/show-a.json" "$work/show-b.json" \
        || { echo "FAIL: inspect show --json is not deterministic" >&2; exit 1; }
    cp "$work"/runs-b/*.tgrun "$work/runs-a/other.tgrun"
    "$tg" inspect diff "$run" other --ledger "$work/runs-a" >/dev/null \
        || { echo "FAIL: identical runs must diff clean" >&2; exit 1; }
    "$tg" inspect rebalance "$run" --data "$work/ds" --ledger "$work/runs-a" \
        --cost invocations >/dev/null \
        || { echo "FAIL: inspect rebalance errored" >&2; exit 1; }
    echo "    inspect smoke OK (run $run)"
}

# Bench-report gate: regenerate the committed machine-readable report
# (fixed-seed HASH/MEME/TDSP x 3/6-partition matrix with the metrics
# registry armed), then regression-gate the fresh run against the
# committed baseline. `bench compare` exits 2 when a top-level *_ns
# aggregate grew past +50 % and past the 25 ms noise floor.
bench_report_stage() {
    echo "==> bench report: HASH/MEME/TDSP x {3,6} partitions -> BENCH_tempograph.json.new"
    cargo run -q --release -p tempograph-bench --bin bench -- \
        report --out BENCH_tempograph.json.new
    echo "==> bench report: gate fresh run against committed baseline"
    cargo run -q --release -p tempograph-bench --bin bench -- \
        compare BENCH_tempograph.json BENCH_tempograph.json.new
    mv BENCH_tempograph.json.new BENCH_tempograph.json
    echo "    baseline refreshed: BENCH_tempograph.json (commit if it should stick)"
}

if [[ "$BENCH_REPORT" -eq 1 ]]; then
    bench_report_stage
    echo "CI OK (bench-report)"
    exit 0
fi

if [[ "$LINT_ONLY" -eq 1 ]]; then
    lint_stage
    echo "CI OK (lint)"
    exit 0
fi

if [[ "$FAULTS_ONLY" -eq 1 ]]; then
    faults_stage
    echo "CI OK (faults)"
    exit 0
fi

if [[ "$TRANSPORT_ONLY" -eq 1 ]]; then
    transport_stage
    echo "CI OK (transport)"
    exit 0
fi

if [[ "$INSPECT_ONLY" -eq 1 ]]; then
    inspect_stage
    echo "CI OK (inspect)"
    exit 0
fi

lint_stage

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "    rustfmt not installed; skipping"
fi

echo "==> cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    clippy not installed; skipping"
fi

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --workspace
cargo test -q --workspace

echo "==> trace crate under --all-features (deep-validate)"
cargo test -q -p tempograph-trace --all-features

echo "==> trace overhead smoke test (tracing disabled must be ~free)"
cargo test -q --release --test trace_integration -- --ignored

echo "==> metrics overhead smoke test (disabled instruments must not allocate)"
cargo test -q --release --test metrics_overhead -- --ignored

faults_stage

transport_stage

inspect_stage

miri_stage

echo "CI OK"
