#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 verification gate.
# Usage: ./ci.sh            (full pipeline)
#        ./ci.sh --faults   (fault-tolerance stage only)
set -euo pipefail
cd "$(dirname "$0")"

FAULTS_ONLY=0
for arg in "$@"; do
    case "$arg" in
        --faults) FAULTS_ONLY=1 ;;
        *) echo "unknown argument: $arg (expected --faults)" >&2; exit 2 ;;
    esac
done

# Fault-tolerance gate: the recovery-equivalence suite (fixed seeds baked
# into the tests), the seeded fault-plan property tests, and the smoke test
# asserting the disabled hooks add zero hot-path allocations.
faults_stage() {
    echo "==> faults: recovery-equivalence suite (all algorithms, 3 and 6 partitions)"
    cargo test -q --test recovery_equivalence

    echo "==> faults: engine fault-plan property tests (PROPTEST_CASES=${PROPTEST_CASES:-64})"
    PROPTEST_CASES="${PROPTEST_CASES:-64}" \
        cargo test -q -p tempograph-engine --test fault_recovery_prop

    echo "==> faults: checkpoint overhead smoke test (disabled hooks must not allocate)"
    cargo test -q --release --test checkpoint_overhead -- --ignored
}

if [[ "$FAULTS_ONLY" -eq 1 ]]; then
    faults_stage
    echo "CI OK (faults)"
    exit 0
fi

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "    rustfmt not installed; skipping"
fi

echo "==> cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    clippy not installed; skipping"
fi

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --workspace
cargo test -q --workspace

echo "==> trace crate under --all-features (deep-validate)"
cargo test -q -p tempograph-trace --all-features

echo "==> trace overhead smoke test (tracing disabled must be ~free)"
cargo test -q --release --test trace_integration -- --ignored

faults_stage

echo "CI OK"
