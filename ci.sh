#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 verification gate.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "    rustfmt not installed; skipping"
fi

echo "==> cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    clippy not installed; skipping"
fi

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --workspace
cargo test -q --workspace

echo "==> trace crate under --all-features (deep-validate)"
cargo test -q -p tempograph-trace --all-features

echo "==> trace overhead smoke test (tracing disabled must be ~free)"
cargo test -q --release --test trace_integration -- --ignored

echo "CI OK"
